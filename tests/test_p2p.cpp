// Tests for the P2P distribution substrate: Progress counters, chunk
// fetching + coalescing, rarest-first swarm completion, LANTorrent
// pipeline timing, and the VMTorrent-style streaming backend feeding a
// QCOW2 chain.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "p2p/stream_backend.hpp"
#include "p2p/swarm.hpp"
#include "io/mount_table.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/units.hpp"

namespace vmic::p2p {
namespace {

using sim::SimEnv;
using sim::Task;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

TEST(Progress, WakesAtThreshold) {
  SimEnv env;
  Progress p{env};
  std::vector<int> log;
  auto waiter = [&](std::uint64_t need, int id) -> Task<void> {
    co_await p.wait_for(need);
    log.push_back(id);
  };
  env.spawn(waiter(3, 1));
  env.spawn(waiter(1, 2));
  env.spawn(waiter(2, 3));
  // Coroutine parameters (not captures): a capturing lambda's closure
  // would die at the end of the spawn statement, before the first resume.
  env.spawn([](SimEnv& e, Progress& pr) -> Task<void> {
    co_await e.delay(10);
    pr.advance_to(1);
    co_await e.delay(10);
    pr.advance_to(3);  // wakes both 3 and 1
  }(env, p));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  // Waiting for an already-reached count completes immediately.
  bool done = false;
  env.spawn([](Progress& pr, bool& d) -> Task<void> {
    co_await pr.wait_for(2);
    d = true;
  }(p, done));
  env.run();
  EXPECT_TRUE(done);
}

TEST(Progress, MultipleWaitersAtTheSameThresholdAllWake) {
  SimEnv env;
  Progress p{env};
  std::vector<int> log;
  auto waiter = [&](std::uint64_t need, int id) -> Task<void> {
    co_await p.wait_for(need);
    log.push_back(id);
  };
  // Three waiters parked on the same threshold, plus one below it.
  env.spawn(waiter(5, 1));
  env.spawn(waiter(5, 2));
  env.spawn(waiter(5, 3));
  env.spawn(waiter(4, 4));
  env.spawn([](SimEnv& e, Progress& pr) -> Task<void> {
    co_await e.delay(10);
    pr.advance_to(4);
    co_await e.delay(10);
    pr.advance_to(5);
  }(env, p));
  env.run();
  // The below-threshold waiter wakes first; the three co-located waiters
  // all wake on one advance, in registration (FIFO) order.
  EXPECT_EQ(log, (std::vector<int>{4, 1, 2, 3}));
}

TEST(Progress, AdvanceJumpingPastSeveralThresholdsWakesThemAll) {
  SimEnv env;
  Progress p{env};
  std::vector<int> log;
  auto waiter = [&](std::uint64_t need, int id) -> Task<void> {
    co_await p.wait_for(need);
    log.push_back(id);
  };
  env.spawn(waiter(7, 1));
  env.spawn(waiter(2, 2));
  env.spawn(waiter(5, 3));
  env.spawn(waiter(9, 4));  // beyond the jump: must stay parked
  env.spawn([](SimEnv& e, Progress& pr) -> Task<void> {
    co_await e.delay(10);
    pr.advance_to(8);  // leapfrogs 2, 5 and 7 in one call
  }(env, p));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(p.count(), 8u);
  // Re-advancing below the current count is a no-op; reaching 9 releases
  // the last waiter.
  p.advance_to(3);
  p.advance_to(9);
  env.run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1, 4}));
}

TEST(Swarm, SingleChunkFetchTiming) {
  SimEnv env;
  P2pParams p;
  p.chunk_size = 4_MiB;
  Swarm swarm{env, 2, 8_MiB, p};
  EXPECT_EQ(swarm.num_chunks(), 2u);
  run_sync(env, swarm.fetch_chunk(0, 0));
  EXPECT_TRUE(swarm.peer_has(0, 0));
  EXPECT_FALSE(swarm.peer_has(0, 1));
  // ~ chunk / 125 MB/s (both legs run concurrently).
  EXPECT_NEAR(sim::to_seconds(env.now()), 4.0 * 1048576 / 125e6, 5e-3);
}

TEST(Swarm, FetchIsIdempotentAndCoalesced) {
  SimEnv env;
  Swarm swarm{env, 2, 8_MiB};
  run_sync(env, swarm.fetch_chunk(0, 0));
  const auto t = env.now();
  const auto moved = swarm.bytes_transferred();
  run_sync(env, swarm.fetch_chunk(0, 0));  // already present: free
  EXPECT_EQ(env.now(), t);
  EXPECT_EQ(swarm.bytes_transferred(), moved);

  // Two concurrent fetches of the same chunk: one transfer.
  env.spawn(swarm.fetch_chunk(1, 0));
  env.spawn(swarm.fetch_chunk(1, 0));
  env.run();
  EXPECT_TRUE(swarm.peer_has(1, 0));
  EXPECT_NEAR(static_cast<double>(swarm.bytes_transferred()),
              static_cast<double>(2 * (4_MiB + 512)), 1024.0);
}

TEST(Swarm, DownloadAllCompletesEveryPeer) {
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 4, 16_MiB, p};
  for (int i = 0; i < 4; ++i) env.spawn(swarm.download_all(i));
  env.run();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(swarm.peer_complete(i));
  // Peers exchange chunks with each other: total traffic is bounded well
  // below "everyone pulls everything from the seed serially" wall time.
  EXPECT_GE(swarm.bytes_transferred(), 4 * 16_MiB);
}

TEST(Swarm, PeersOffloadTheSeed) {
  // With swarming, the time for N peers is far below N * (image/bw):
  // peers become sources for each other.
  const std::uint64_t image = 32_MiB;
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 8, image, p};
  for (int i = 0; i < 8; ++i) env.spawn(swarm.download_all(i));
  env.run();
  const double serial_seed_secs =
      8.0 * static_cast<double>(image) / p.nic_bandwidth_Bps;
  EXPECT_LT(sim::to_seconds(env.now()), 0.7 * serial_seed_secs);
}

TEST(Swarm, PipelineStreamsThroughChain) {
  const std::uint64_t image = 32_MiB;
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 8, image, p};
  run_sync(env, swarm.run_pipeline());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(swarm.peer_complete(i));
  // Store-and-forward pipeline: ~ image/bw + (hops * chunk/bw), nowhere
  // near hops * image/bw.
  const double bw = p.nic_bandwidth_Bps;
  const double expect = static_cast<double>(image) / bw +
                        8.0 * static_cast<double>(p.chunk_size) / bw;
  EXPECT_NEAR(sim::to_seconds(env.now()), expect, 0.5 * expect);
  const double serial = 8.0 * static_cast<double>(image) / bw;
  EXPECT_LT(sim::to_seconds(env.now()), 0.6 * serial);
}

TEST(Swarm, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEnv env;
    P2pParams p;
    p.chunk_size = 1_MiB;
    Swarm swarm{env, 4, 8_MiB, p};
    for (int i = 0; i < 4; ++i) env.spawn(swarm.download_all(i));
    env.run();
    return env.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// VMTorrent-style streaming backend
// ---------------------------------------------------------------------------

TEST(P2pStream, ServesCorrectBytesOnDemand) {
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 2, 8_MiB, p};
  SparseBuffer content;
  std::vector<std::uint8_t> data(8_MiB);
  Rng rng{3};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  content.write(0, data);

  P2pStreamBackend be{swarm, 0, content};
  std::vector<std::uint8_t> out(1_MiB + 777);
  const bool ok = run_sync(env, [&]() -> Task<bool> {
    co_return (co_await be.pread(3_MiB + 100, out)).ok();
  }());
  EXPECT_TRUE(ok);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data() + 3_MiB + 100, out.size()));
  EXPECT_GT(be.demand_fetches(), 0u);
  EXPECT_GT(env.now(), 0);
  // The touched chunks are now local; re-reading costs no transfer.
  const auto t = env.now();
  (void)run_sync(env, [&]() -> Task<bool> {
    co_return (co_await be.pread(3_MiB + 100, out)).ok();
  }());
  EXPECT_EQ(env.now(), t);
}

TEST(P2pStream, BackgroundStreamFillsEverything) {
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 1, 8_MiB, p};
  SparseBuffer content;
  P2pStreamBackend be{swarm, 0, content};
  be.start_background_stream();
  env.run();
  EXPECT_TRUE(swarm.peer_complete(0));
}

TEST(P2pStream, BackgroundStreamYieldsToOutstandingDemandFetch) {
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 1, 32_MiB, p};
  SparseBuffer content;
  P2pStreamBackend be{swarm, 0, content};
  be.start_background_stream();
  // Mid-stream, demand-fetch a chunk from the far end of the image.
  sim::SimTime demand_done = 0;
  env.spawn([](SimEnv& e, P2pStreamBackend& b,
               sim::SimTime& done) -> Task<void> {
    co_await e.delay(sim::from_seconds(0.05));
    std::vector<std::uint8_t> out(4096);
    (void)co_await b.pread(30_MiB, out);
    done = e.now();
  }(env, be, demand_done));
  env.run();
  EXPECT_TRUE(swarm.peer_complete(0));
  EXPECT_GE(be.demand_fetches(), 1u);
  // The streamer yielded while the demand fetch was outstanding: the
  // boot-critical chunk did not queue behind ~30 MiB of bulk streaming,
  // so it finished in a fraction of the total stream time.
  EXPECT_GT(demand_done, 0);
  EXPECT_LT(sim::to_seconds(demand_done), 0.5 * sim::to_seconds(env.now()));
}

TEST(P2pStream, FeedsAQcow2Chain) {
  // The backend acts as the raw base of a CoW chain: boots compose with
  // the paper's machinery exactly as §7.1.1 envisions.
  SimEnv env;
  P2pParams p;
  p.chunk_size = 1_MiB;
  Swarm swarm{env, 1, 64_MiB, p};
  SparseBuffer content;
  std::vector<std::uint8_t> sig(4096, 0xAB);
  content.write(10_MiB, sig);

  // A directory that exposes the p2p backend under "p2p-base".
  class P2pDir final : public io::ImageDirectory {
   public:
    P2pDir(Swarm& s, const SparseBuffer& c) : swarm_(s), content_(c) {}
    Result<io::BackendPtr> open_file(const std::string& name,
                                     bool) override {
      if (name != "p2p-base") return Errc::not_found;
      return io::BackendPtr{
          std::make_unique<P2pStreamBackend>(swarm_, 0, content_)};
    }
    Result<io::BackendPtr> create_file(const std::string&) override {
      return Errc::read_only;
    }
    [[nodiscard]] bool exists(const std::string& name) const override {
      return name == "p2p-base";
    }

   private:
    Swarm& swarm_;
    const SparseBuffer& content_;
  } p2p_dir{swarm, content};

  storage::MemMedium mem{env};
  storage::SimDirectory local{mem};
  io::MountTable fs;
  fs.mount("p2p", &p2p_dir);
  fs.mount("local", &local);

  const bool ok = run_sync(env, [&]() -> Task<bool> {
    auto r = co_await qcow2::create_cow_image(
        fs, "local/vm.cow", "p2p/p2p-base",
        {.cluster_bits = 16, .virtual_size = 64_MiB});
    if (!r.ok()) co_return false;
    auto dev = co_await qcow2::open_image(fs, "local/vm.cow");
    if (!dev.ok()) co_return false;
    std::vector<std::uint8_t> out(4096);
    if (!(co_await (*dev)->read(10_MiB, out)).ok()) co_return false;
    co_return out == std::vector<std::uint8_t>(4096, 0xAB);
  }());
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace vmic::p2p
