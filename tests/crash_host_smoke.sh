#!/bin/sh
# Host-side kill-9 smoke test: a child process writes through the real
# FileBackend (fdatasync barriers) into a journaled qcow2 image; the
# parent SIGKILLs it mid-write and verifies that the image reopens dirty
# and that `vmi-img check --repair` replays the refcount journal to a
# clean state. This is the one test in the suite where the durability
# stack meets an actual filesystem instead of the crash simulator.
set -e

CRASHSIM="$1"
VMI_IMG="$2"
[ -x "$CRASHSIM" ] && [ -x "$VMI_IMG" ] || {
  echo "usage: $0 <path-to-vmi-crashsim> <path-to-vmi-img>"; exit 2;
}

DIR=$(mktemp -d /tmp/vmi-crash-smoke-XXXXXX)
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT
cd "$DIR"

echo "--- start the torture writer"
"$CRASHSIM" --child-writer vm.qcow2 --seed 11 > writer.out 2>&1 &
PID=$!

# Wait for the first durable barrier, then let it write a while longer so
# the kill lands mid-window with unflushed state in flight.
for i in $(seq 1 100); do
  grep -q ready writer.out 2>/dev/null && break
  sleep 0.1
done
grep -q ready writer.out || { echo "writer never became ready"; exit 1; }
sleep 0.5

echo "--- kill -9 mid-write"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "--- image reopens dirty, repair replays the journal"
"$VMI_IMG" check vm.qcow2 --json | grep -q '"dirty": 1'
"$VMI_IMG" check vm.qcow2 --repair | grep -q "journal replay"
"$VMI_IMG" check vm.qcow2 --json | grep -q '"dirty": 0'
"$VMI_IMG" check vm.qcow2 --json | grep -q '"clean": 1'

echo "HOST CRASH SMOKE PASSED"
