// Tests for the cache-pool accounting and eviction policies (§3.4) and
// the scheduler policies with the cache-aware heuristic.
#include <gtest/gtest.h>

#include "cache/pool.hpp"
#include "cluster/scheduler.hpp"
#include "util/units.hpp"

namespace vmic {
namespace {

using cache::CachePool;
using cache::EvictionPolicy;
using vmic::literals::operator""_MiB;

TEST(CachePool, AdmitAndContains) {
  CachePool pool{300_MiB, EvictionPolicy::lru};
  auto r = pool.admit("centos", 93_MiB);
  EXPECT_TRUE(r.admitted);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_TRUE(pool.contains("centos"));
  EXPECT_EQ(pool.used_bytes(), 93_MiB);
}

TEST(CachePool, ReAdmitUpdatesSize) {
  CachePool pool{300_MiB, EvictionPolicy::lru};
  pool.admit("centos", 10_MiB);
  pool.admit("centos", 93_MiB);  // grew while warming
  EXPECT_EQ(pool.used_bytes(), 93_MiB);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CachePool, LruEvictsLeastRecentlyUsed) {
  CachePool pool{250_MiB, EvictionPolicy::lru};
  pool.admit("a", 93_MiB);
  pool.admit("b", 93_MiB);
  pool.touch("a");  // b becomes LRU
  auto r = pool.admit("c", 93_MiB);
  ASSERT_TRUE(r.admitted);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0], "b");
  EXPECT_TRUE(pool.contains("a"));
  EXPECT_TRUE(pool.contains("c"));
  EXPECT_EQ(pool.evictions(), 1u);
}

TEST(CachePool, FifoIgnoresTouches) {
  CachePool pool{250_MiB, EvictionPolicy::fifo};
  pool.admit("a", 93_MiB);
  pool.admit("b", 93_MiB);
  pool.touch("a");  // irrelevant under FIFO
  auto r = pool.admit("c", 93_MiB);
  ASSERT_TRUE(r.admitted);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0], "a");
}

TEST(CachePool, NonePolicyRejectsWhenFull) {
  CachePool pool{100_MiB, EvictionPolicy::none};
  EXPECT_TRUE(pool.admit("a", 93_MiB).admitted);
  auto r = pool.admit("b", 40_MiB);
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(pool.contains("a"));
}

TEST(CachePool, OversizedEntryNeverFits) {
  CachePool pool{50_MiB, EvictionPolicy::lru};
  pool.admit("small", 10_MiB);
  auto r = pool.admit("huge", 200_MiB);
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(pool.contains("small"));  // nothing evicted in vain
  EXPECT_EQ(pool.evictions(), 0u);
}

TEST(CachePool, UsedNeverExceedsCapacity) {
  CachePool pool{300_MiB, EvictionPolicy::lru};
  for (int i = 0; i < 50; ++i) {
    pool.admit("vmi" + std::to_string(i), (30 + i % 60) * MiB);
    ASSERT_LE(pool.used_bytes(), pool.capacity());
  }
}

TEST(CachePool, PinnedEntriesAreNotEvicted) {
  CachePool pool{250_MiB, EvictionPolicy::lru};
  pool.admit("a", 93_MiB);
  pool.admit("b", 93_MiB);
  pool.pin("a");  // "a" is LRU, but a running VM chains to its file
  auto r = pool.admit("c", 93_MiB);
  ASSERT_TRUE(r.admitted);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0], "b");
  EXPECT_TRUE(pool.contains("a"));
  // Pins nest: one unpin of a doubly-pinned entry keeps it protected.
  pool.pin("a");
  pool.unpin("a");
  EXPECT_TRUE(pool.pinned("a"));
  pool.unpin("a");
  EXPECT_FALSE(pool.pinned("a"));
  // Fully unpinned, "a" is the LRU victim again.
  auto r2 = pool.admit("d", 93_MiB);
  ASSERT_TRUE(r2.admitted);
  ASSERT_EQ(r2.evicted.size(), 1u);
  EXPECT_EQ(r2.evicted[0], "a");
  // Unpinning an absent entry is a harmless no-op.
  pool.unpin("ghost");
  EXPECT_FALSE(pool.pinned("ghost"));
}

TEST(CachePool, PinnedPoolMayExceedCapacityPolicy) {
  // When everything resident is pinned, a new admission finds no victim
  // and is rejected rather than corrupting in-use files.
  CachePool pool{100_MiB, EvictionPolicy::lru};
  pool.admit("a", 93_MiB);
  pool.pin("a");
  auto r = pool.admit("b", 40_MiB);
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(pool.contains("a"));
  EXPECT_EQ(pool.evictions(), 0u);
}

TEST(CachePool, RemoveFreesSpace) {
  CachePool pool{200_MiB, EvictionPolicy::lru};
  pool.admit("a", 150_MiB);
  pool.remove("a");
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_TRUE(pool.admit("b", 180_MiB).admitted);
}

// ---------------------------------------------------------------------------
// Scheduler (§3.4)
// ---------------------------------------------------------------------------

using cluster::NodeState;
using cluster::pick_node;
using cluster::SchedPolicy;

std::vector<NodeState> three_nodes() {
  std::vector<NodeState> n(3);
  for (int i = 0; i < 3; ++i) {
    n[static_cast<std::size_t>(i)].id = i;
    n[static_cast<std::size_t>(i)].vm_capacity = 4;
  }
  return n;
}

TEST(Scheduler, PackingFillsFullestFirst) {
  auto nodes = three_nodes();
  nodes[0].running_vms = 2;
  nodes[1].running_vms = 3;
  nodes[2].running_vms = 0;
  EXPECT_EQ(pick_node(nodes, SchedPolicy::packing, "x", false), 1);
  nodes[1].running_vms = 4;  // full
  EXPECT_EQ(pick_node(nodes, SchedPolicy::packing, "x", false), 0);
}

TEST(Scheduler, StripingSpreadsOut) {
  auto nodes = three_nodes();
  nodes[0].running_vms = 2;
  nodes[1].running_vms = 1;
  nodes[2].running_vms = 1;
  EXPECT_EQ(pick_node(nodes, SchedPolicy::striping, "x", false), 1);
}

TEST(Scheduler, LoadAwarePicksLightest) {
  auto nodes = three_nodes();
  nodes[0].load = 0.9;
  nodes[1].load = 0.2;
  nodes[2].load = 0.5;
  EXPECT_EQ(pick_node(nodes, SchedPolicy::load_aware, "x", false), 1);
}

TEST(Scheduler, CacheAwarePrefersWarmNode) {
  auto nodes = three_nodes();
  nodes[0].running_vms = 0;
  nodes[2].running_vms = 3;        // striping alone would avoid node 2
  nodes[2].warm_vmis.insert("centos");
  EXPECT_EQ(pick_node(nodes, SchedPolicy::striping, "centos", true), 2);
  // Without the heuristic, striping picks the emptiest node.
  EXPECT_EQ(pick_node(nodes, SchedPolicy::striping, "centos", false), 0);
  // For a different VMI, no warm node exists: base policy applies.
  EXPECT_EQ(pick_node(nodes, SchedPolicy::striping, "debian", true), 0);
}

TEST(Scheduler, CacheAwareRespectsCapacity) {
  auto nodes = three_nodes();
  nodes[1].warm_vmis.insert("centos");
  nodes[1].running_vms = 4;  // warm but full
  EXPECT_EQ(pick_node(nodes, SchedPolicy::striping, "centos", true), 0);
}

TEST(Scheduler, AllFullReturnsMinusOne) {
  auto nodes = three_nodes();
  for (auto& n : nodes) n.running_vms = n.vm_capacity;
  EXPECT_EQ(pick_node(nodes, SchedPolicy::packing, "x", true), -1);
}

}  // namespace
}  // namespace vmic
