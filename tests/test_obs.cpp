// vmic::obs unit tests: instrument semantics, registry binding, snapshot
// rendering, and sim-time tracing.

#include <gtest/gtest.h>

#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/env.hpp"
#include "sim/run.hpp"

namespace vmic::obs {
namespace {

// ---------------------------------------------------------------------------
// instruments
// ---------------------------------------------------------------------------

TEST(Counter, Semantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  ++c;
  c += 7;
  EXPECT_EQ(c.value(), 50u);
  // Implicit conversion keeps pre-refactor comparison sites compiling.
  const std::uint64_t v = c;
  EXPECT_EQ(v, 50u);
  EXPECT_TRUE(c == 50u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, Semantics) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(1.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  const double d = g;
  EXPECT_DOUBLE_EQ(d, 9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketEdgesAreInclusive) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);    // first bucket (<= 1)
  h.observe(1.001);  // second bucket
  h.observe(10.0);   // second bucket (<= 10)
  h.observe(11.0);   // +inf bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.001 + 10.0 + 11.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
}

TEST(FmtDouble, ShortestRoundTrip) {
  EXPECT_EQ(fmt_double(0), "0");
  EXPECT_EQ(fmt_double(1), "1");
  EXPECT_EQ(fmt_double(0.1), "0.1");
  EXPECT_EQ(fmt_double(1048576), "1048576");
  // Round-trip exactness on an awkward value.
  const double v = 37.796041396;
  EXPECT_EQ(std::stod(fmt_double(v)), v);
}

TEST(RenderLabels, RendersInGivenOrder) {
  EXPECT_EQ(render_labels({}), "");
  EXPECT_EQ(render_labels({{"node", "c0"}}), "{node=\"c0\"}");
  // Rendering is order-preserving; *registration* normalizes (sorts) —
  // see Registry.LabelOrderIsNormalized.
  EXPECT_EQ(render_labels({{"z", "1"}, {"a", "2"}}), "{z=\"1\",a=\"2\"}");
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(Registry, OwnedCountersDedupByNameAndLabels) {
  Registry r;
  Counter& a = r.counter("x.count", {{"node", "c0"}});
  Counter& b = r.counter("x.count", {{"node", "c0"}});
  Counter& c = r.counter("x.count", {{"node", "c1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  c.inc(4);
  EXPECT_EQ(r.size(), 2u);
  const auto snap = r.snapshot();
  EXPECT_EQ(snap.counter_total("x.count"), 7u);
  const MetricPoint* p = snap.find("x.count", {{"node", "c1"}});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counter, 4u);
}

TEST(Registry, LabelOrderIsNormalized) {
  Registry r;
  Counter& a = r.counter("y", {{"b", "2"}, {"a", "1"}});
  Counter& b = r.counter("y", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  const auto snap = r.snapshot();
  // find() normalizes too.
  ASSERT_NE(snap.find("y", {{"b", "2"}, {"a", "1"}}), nullptr);
}

TEST(Registry, AttachAndDetach) {
  Registry r;
  Counter mine;
  int owner_token = 0;
  r.attach_counter("z.bytes", {{"node", "c0"}}, &mine, &owner_token);
  mine.inc(123);
  {
    const auto snap = r.snapshot();
    const MetricPoint* p = snap.find("z.bytes", {{"node", "c0"}});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->counter, 123u);
  }
  r.detach(&owner_token);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.snapshot().find("z.bytes", {{"node", "c0"}}), nullptr);
}

TEST(Registry, GaugeFnEvaluatedAtSnapshotTime) {
  Registry r;
  double live = 1.0;
  int owner = 0;
  r.attach_gauge_fn("occ", {}, [&live] { return live; }, &owner);
  live = 8.0;
  const auto snap = r.snapshot();
  const MetricPoint* p = snap.find("occ");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->gauge, 8.0);
  r.detach(&owner);
}

TEST(Registry, ResetOwnedLeavesAttachedAlone) {
  Registry r;
  Counter attached;
  int owner = 0;
  r.attach_counter("att", {}, &attached, &owner);
  Counter& owned = r.counter("own");
  attached.inc(5);
  owned.inc(5);
  r.reset_owned();
  EXPECT_EQ(attached.value(), 5u);
  EXPECT_EQ(owned.value(), 0u);
  r.detach(&owner);
}

TEST(Snapshot, TextFormatIsSortedAndExact) {
  Registry r;
  r.counter("b.count", {{"node", "c1"}}).inc(2);
  r.counter("b.count", {{"node", "c0"}}).inc(1);
  r.gauge("a.depth", {}).set(1.5);
  const std::string text = r.snapshot().to_text();
  EXPECT_EQ(text,
            "a.depth 1.5\n"
            "b.count{node=\"c0\"} 1\n"
            "b.count{node=\"c1\"} 2\n");
}

TEST(Snapshot, HistogramExpandsPrometheusStyle) {
  Registry r;
  Histogram& h = r.histogram("lat", {{"n", "x"}}, {0.5, 1.0});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(2.0);
  const std::string text = r.snapshot().to_text();
  EXPECT_EQ(text,
            "lat_bucket{n=\"x\",le=\"0.5\"} 1\n"
            "lat_bucket{n=\"x\",le=\"1\"} 2\n"
            "lat_bucket{n=\"x\",le=\"+inf\"} 3\n"
            "lat_sum{n=\"x\"} 3\n"
            "lat_count{n=\"x\"} 3\n");
}

TEST(Snapshot, JsonContainsTypedSeries) {
  Registry r;
  r.counter("c", {{"k", "v"}}).inc(9);
  r.gauge("g", {}).set(2.5);
  const std::string json = r.snapshot().to_json();
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Snapshot, DeterministicAcrossRenders) {
  Registry r;
  r.counter("m", {{"node", "c3"}}).inc(3);
  r.counter("m", {{"node", "c10"}}).inc(10);
  r.gauge("q").set(0.125);
  const auto s1 = r.snapshot();
  const auto s2 = r.snapshot();
  EXPECT_EQ(s1.to_text(), s2.to_text());
  EXPECT_EQ(s1.to_json(), s2.to_json());
}

// ---------------------------------------------------------------------------
// tracer
// ---------------------------------------------------------------------------

sim::Task<void> traced_work(sim::SimEnv& env, Tracer& t) {
  const std::uint32_t outer_track = t.track("outer");
  const std::uint32_t inner_track = t.track("inner");
  Span outer = t.span(outer_track, "outer.op", "test");
  co_await env.delay(1000);
  {
    Span inner = t.span(inner_track, "inner.op", "test", "\"bytes\":42");
    co_await env.delay(500);
  }  // inner records here
  co_await env.delay(250);
  outer.end();
  t.instant(outer_track, "marker", "test");
}

TEST(Tracer, SpanNestingAndOrdering) {
  sim::SimEnv env;
  Tracer t;
  t.bind(&env);
  t.set_enabled(true);
  sim::run_sync(env, traced_work(env, t));

  ASSERT_EQ(t.size(), 3u);
  // Spans record at end time: inner (ends t=1500) before outer (t=1750).
  const TraceEvent& inner = t.events()[0];
  const TraceEvent& outer = t.events()[1];
  const TraceEvent& marker = t.events()[2];
  EXPECT_EQ(inner.name, "inner.op");
  EXPECT_EQ(inner.start, 1000);
  EXPECT_EQ(inner.end, 1500);
  EXPECT_EQ(inner.args, "\"bytes\":42");
  EXPECT_EQ(outer.name, "outer.op");
  EXPECT_EQ(outer.start, 0);
  EXPECT_EQ(outer.end, 1750);
  // Nesting: outer strictly contains inner.
  EXPECT_LE(outer.start, inner.start);
  EXPECT_GE(outer.end, inner.end);
  EXPECT_EQ(marker.name, "marker");
  EXPECT_EQ(marker.start, marker.end);

  // Track ids are deterministic and deduplicated.
  EXPECT_EQ(t.track("outer"), outer.track);
  EXPECT_EQ(t.track("inner"), inner.track);
  EXPECT_NE(outer.track, inner.track);
}

TEST(Tracer, DisabledRecordsNothing) {
  sim::SimEnv env;
  Tracer t;
  t.bind(&env);  // enabled_ stays false
  sim::run_sync(env, traced_work(env, t));
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, ChromeJsonShape) {
  sim::SimEnv env;
  Tracer t;
  t.bind(&env);
  t.set_enabled(true);
  sim::run_sync(env, traced_work(env, t));
  const std::string json = t.to_chrome_json();
  // Sorted by start: outer (ts 0) precedes inner (ts 1).
  const auto outer_pos = json.find("\"name\":\"outer.op\"");
  const auto inner_pos = json.find("\"name\":\"inner.op\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  // Thread-name metadata for both tracks.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  // Complete events carry microsecond durations (1500-1000 ns = 0.500 us).
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);
}

TEST(Hub, TracingHelperIsNullSafe) {
  EXPECT_FALSE(tracing(nullptr));
  Hub h;
  EXPECT_FALSE(tracing(&h));
  h.tracer.set_enabled(true);
  EXPECT_TRUE(tracing(&h));
}

TEST(Hub, MovedFromSpanIsInert) {
  sim::SimEnv env;
  Tracer t;
  t.bind(&env);
  t.set_enabled(true);
  {
    Span a = t.span(t.track("x"), "op", "test");
    Span b = std::move(a);
    a.end();  // moved-from: no record
    b.end();
    b.end();  // second end: no double record
  }
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace vmic::obs
