// vmic::cloud tests: workload generation, trace round-trips, determinism
// of whole cloud runs, crash/outage resilience (no lost or double-counted
// VMs, no leaked slots), and SLO counter consistency.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cloud/engine.hpp"

namespace vmic::cloud {
namespace {

// Small, fast base config shared by the run tests: a short horizon and a
// brisk arrival rate so every scenario finishes in well under a second.
CloudConfig small_config(std::uint64_t seed) {
  CloudConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 900.0;                     // 15 simulated minutes
  cfg.workload.mean_interarrival_s = 20.0;   // ~45 arrivals
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  return cfg;
}

void expect_terminal_accounting(const CloudResult& r) {
  EXPECT_EQ(r.completed + r.aborted + r.rejected, r.arrivals);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.deploy.count, static_cast<std::size_t>(r.completed));
  // Every cloud.* counter agrees with its CloudResult mirror.
  const auto& m = r.metrics;
  EXPECT_EQ(m.counter_total("cloud.arrivals"),
            static_cast<std::uint64_t>(r.arrivals));
  EXPECT_EQ(m.counter_total("cloud.completed"),
            static_cast<std::uint64_t>(r.completed));
  EXPECT_EQ(m.counter_total("cloud.aborted"),
            static_cast<std::uint64_t>(r.aborted));
  EXPECT_EQ(m.counter_total("cloud.rejected"),
            static_cast<std::uint64_t>(r.rejected));
  EXPECT_EQ(m.counter_total("cloud.retries"),
            static_cast<std::uint64_t>(r.retries));
  EXPECT_EQ(m.counter_total("cloud.warm_hits"),
            static_cast<std::uint64_t>(r.warm_hits));
  const obs::MetricPoint* hist = m.find("cloud.deploy_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(r.completed));
}

// --- workload ---------------------------------------------------------------

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig wc;
  Rng a(77);
  Rng b(77);
  const auto w1 = generate_workload(wc, 3600.0, a);
  const auto w2 = generate_workload(wc, 3600.0, b);
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_DOUBLE_EQ(w1[i].arrival_s, w2[i].arrival_s);
    EXPECT_EQ(w1[i].vmi, w2[i].vmi);
    EXPECT_DOUBLE_EQ(w1[i].lifetime_s, w2[i].lifetime_s);
  }
  Rng c(78);
  const auto w3 = generate_workload(wc, 3600.0, c);
  EXPECT_NE(w1.size(), 0u);
  // A different seed virtually always shifts the first arrival.
  ASSERT_FALSE(w3.empty());
  EXPECT_NE(w1[0].arrival_s, w3[0].arrival_s);
}

TEST(Workload, ArrivalsSortedWithinHorizonAndZipfSkewed) {
  WorkloadConfig wc;
  wc.mean_interarrival_s = 2.0;
  wc.num_vmis = 4;
  Rng rng(5);
  const auto w = generate_workload(wc, 7200.0, rng);
  ASSERT_GT(w.size(), 1000u);
  std::map<int, int> by_vmi;
  double prev = 0;
  for (const auto& r : w) {
    EXPECT_GE(r.arrival_s, prev);
    EXPECT_LT(r.arrival_s, 7200.0);
    EXPECT_GE(r.lifetime_s, wc.min_lifetime_s);
    ASSERT_GE(r.vmi, 0);
    ASSERT_LT(r.vmi, wc.num_vmis);
    prev = r.arrival_s;
    ++by_vmi[r.vmi];
  }
  // Zipf(1.0): image 0 is drawn about twice as often as image 1 and about
  // four times as often as image 3.
  EXPECT_GT(by_vmi[0], by_vmi[1]);
  EXPECT_GT(by_vmi[1], by_vmi[3]);
  EXPECT_GT(by_vmi[0], 2 * by_vmi[3]);
}

TEST(Workload, FlashCrowdConcentratesArrivals) {
  WorkloadConfig wc;
  wc.process = ArrivalProcess::flash_crowd;
  wc.mean_interarrival_s = 30.0;
  wc.flash_at_s = 1000.0;
  wc.flash_duration_s = 500.0;
  wc.flash_factor = 8.0;
  Rng rng(11);
  const auto w = generate_workload(wc, 3600.0, rng);
  int inside = 0;
  for (const auto& r : w) {
    if (r.arrival_s >= 1000.0 && r.arrival_s < 1500.0) ++inside;
  }
  // The 500 s window is ~14% of the horizon but runs at 8x rate: it must
  // hold well over a third of all arrivals.
  EXPECT_GT(inside * 3, static_cast<int>(w.size()));
}

TEST(Workload, TraceCsvRoundTrip) {
  WorkloadConfig wc;
  Rng rng(13);
  const auto w = generate_workload(wc, 1800.0, rng);
  ASSERT_FALSE(w.empty());
  const std::string csv = render_trace_csv(w);
  const auto parsed = parse_trace_csv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].arrival_s, w[i].arrival_s, 1e-6);
    EXPECT_EQ((*parsed)[i].vmi, w[i].vmi);
    EXPECT_NEAR((*parsed)[i].lifetime_s, w[i].lifetime_s, 1e-6);
  }
}

TEST(Workload, TraceCsvRejectsMalformedInput) {
  EXPECT_EQ(parse_trace_csv("1.0,0").error(), Errc::invalid_argument);
  EXPECT_EQ(parse_trace_csv("a,b,c").error(), Errc::invalid_argument);
  EXPECT_EQ(parse_trace_csv("-1.0,0,5.0").error(), Errc::invalid_argument);
  EXPECT_EQ(parse_trace_csv("1.0,-2,5.0").error(), Errc::invalid_argument);
  EXPECT_EQ(parse_trace_csv("1.0,0,5.0 trailing").error(),
            Errc::invalid_argument);
  // Comments, blank lines, CRLF, and out-of-order rows are all fine.
  const auto ok = parse_trace_csv(
      "# header\n\n10.0,1,5.0\r\n2.5,0,3.0\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 2u);
  EXPECT_DOUBLE_EQ((*ok)[0].arrival_s, 2.5);  // sorted by arrival
  EXPECT_EQ((*ok)[1].vmi, 1);
}

// --- cloud runs -------------------------------------------------------------

TEST(Cloud, DeterministicPerSeed) {
  const CloudResult r1 = run_cloud(small_config(21));
  const CloudResult r2 = run_cloud(small_config(21));
  EXPECT_EQ(r1.arrivals, r2.arrivals);
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.warm_hits, r2.warm_hits);
  EXPECT_DOUBLE_EQ(r1.deploy.mean, r2.deploy.mean);
  EXPECT_DOUBLE_EQ(r1.sim_seconds, r2.sim_seconds);
  const std::string t1 = r1.metrics.to_text();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, r2.metrics.to_text());
}

TEST(Cloud, CleanRunDeploysEveryArrival) {
  const CloudResult r = run_cloud(small_config(22));
  ASSERT_GT(r.arrivals, 10);
  EXPECT_EQ(r.completed, r.arrivals);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.node_crashes, 0);
  // The skewed mix revisits images: the cache layer must convert that
  // into a substantial warm-hit ratio.
  EXPECT_GT(r.cache_hit_ratio, 0.3);
  EXPECT_GT(r.deploy.p50, 0.0);
  EXPECT_GE(r.deploy.p99, r.deploy.p50);
  expect_terminal_accounting(r);
}

TEST(Cloud, NodeCrashesDegradeButNeverLoseVms) {
  CloudConfig cfg = small_config(23);
  // Two mid-run crashes on a 4-node cloud: plenty of collateral damage.
  cfg.cluster.compute_nodes = 4;
  cfg.failures.crashes.push_back({200.0, 300.0, 0});
  cfg.failures.crashes.push_back({400.0, 200.0, 1});
  const CloudResult r = run_cloud(cfg);
  EXPECT_EQ(r.node_crashes, 2);
  EXPECT_EQ(r.node_recoveries, 2);
  // Crashes killed running or in-flight VMs...
  EXPECT_GT(r.crash_kills + r.vm_crashes, 0);
  // ...but every killed attempt was retried or aborted, never dropped.
  expect_terminal_accounting(r);
  EXPECT_EQ(r.metrics.counter_total("cloud.node_crashes"), 2u);
  EXPECT_EQ(r.metrics.counter_total("cloud.crash_kills"),
            static_cast<std::uint64_t>(r.crash_kills));
}

TEST(Cloud, CrashSalvageReadoptsCleanCachesAndCutsTraffic) {
  CloudConfig cfg = small_config(23);
  cfg.cluster.compute_nodes = 4;
  // Late, short crashes: by then the nodes hold warm caches, and most
  // are idle at crash time — the salvageable case.
  cfg.failures.crashes.push_back({500.0, 60.0, 0});
  cfg.failures.crashes.push_back({650.0, 60.0, 1});
  const CloudResult rs = run_cloud(cfg);
  cfg.crash_salvage = false;
  const CloudResult rn = run_cloud(cfg);

  // Legacy mode deletes idle caches at crash time: nothing to salvage.
  EXPECT_EQ(rn.caches_salvaged, 0);
  EXPECT_EQ(rn.caches_invalidated, 0);
  // Salvage mode adjudicated every surviving idle cache, one way or the
  // other, and the counters mirror the result fields.
  EXPECT_GT(rs.caches_salvaged + rs.caches_invalidated, 0);
  EXPECT_EQ(rs.metrics.counter_total("cloud.cache_salvaged"),
            static_cast<std::uint64_t>(rs.caches_salvaged));
  EXPECT_EQ(rs.metrics.counter_total("cloud.cache_invalidated"),
            static_cast<std::uint64_t>(rs.caches_invalidated));
  expect_terminal_accounting(rs);
  expect_terminal_accounting(rn);
  // Re-adopted caches keep their warm clusters, so the storage node
  // serves no more bytes than under wholesale invalidation.
  EXPECT_LE(rs.storage_payload_bytes, rn.storage_payload_bytes);
}

TEST(Cloud, StorageOutageForcesRetriesNotLosses) {
  CloudConfig cfg = small_config(24);
  // A 2-minute storage outage in the thick of the run.
  cfg.failures.outages.push_back({300.0, 120.0});
  const CloudResult r = run_cloud(cfg);
  EXPECT_GT(r.deploy_failures, 0);
  EXPECT_GT(r.retries, 0);
  expect_terminal_accounting(r);
}

TEST(Cloud, AbortsAfterMaxAttemptsUnderPermanentOutage) {
  CloudConfig cfg = small_config(25);
  cfg.horizon_s = 120.0;
  cfg.workload.mean_interarrival_s = 30.0;
  cfg.max_attempts = 2;
  cfg.retry_backoff_s = 1.0;
  // Storage is dark for the whole run (and all backoffs): nothing cold
  // can deploy, so every arrival burns its attempts and aborts.
  cfg.failures.outages.push_back({0.0, 100000.0});
  const CloudResult r = run_cloud(cfg);
  ASSERT_GT(r.arrivals, 0);
  EXPECT_EQ(r.completed, 0);
  EXPECT_EQ(r.aborted, r.arrivals);
  EXPECT_EQ(r.retries, r.arrivals * (cfg.max_attempts - 1));
  expect_terminal_accounting(r);
}

TEST(Cloud, TraceReplayMatchesGeneratedWorkload) {
  CloudConfig gen = small_config(26);
  const CloudResult r1 = run_cloud(gen);
  // Re-run with the same workload materialised up front: byte-identical.
  Rng rng(gen.seed);
  CloudConfig replay = gen;
  replay.requests = generate_workload(gen.workload, gen.horizon_s, rng);
  const CloudResult r2 = run_cloud(replay);
  EXPECT_EQ(r1.metrics.to_text(), r2.metrics.to_text());
}

TEST(Cloud, RejectsWhenAdmissionQueueOverflows) {
  CloudConfig cfg = small_config(27);
  cfg.max_queue_depth = 2;
  cfg.cluster.compute_nodes = 1;
  cfg.vm_slots_per_node = 1;
  cfg.workload.mean_interarrival_s = 5.0;
  const CloudResult r = run_cloud(cfg);
  EXPECT_GT(r.rejected, 0);
  expect_terminal_accounting(r);
}

// --- dedup ------------------------------------------------------------------

// Sibling-group content model + content-addressed dedup + compressed
// cache clusters, on a config small enough to stay sub-second.
CloudConfig dedup_config(std::uint64_t seed) {
  CloudConfig cfg = small_config(seed);
  cfg.workload.num_vmis = 8;
  cfg.sibling_group_size = 4;
  cfg.cache_cluster_bits = 12;
  cfg.dedup = true;
  cfg.cache_compress = true;
  // Keep the host-side content model small: full-size images would
  // materialise gigabytes per run. Half the image carries content, the
  // rest stays zero so the zero-detection tier is exercised too.
  cfg.profile.image_size = 64 * MiB;
  cfg.profile.unique_read_bytes = 12 * MiB;
  cfg.content_bytes = 32 * MiB;
  return cfg;
}

TEST(Cloud, DedupServesSiblingFillsLocally) {
  CloudConfig off = dedup_config(31);
  off.dedup = false;
  off.cache_compress = false;
  const CloudResult rb = run_cloud(off);
  const CloudResult rd = run_cloud(dedup_config(31));

  // Sibling images share content: the fingerprint index must convert
  // that into local fills, and the storage node must serve fewer bytes.
  EXPECT_GT(rd.dedup_local_hits, 0u);
  EXPECT_GT(rd.dedup_bytes_served, 0u);
  EXPECT_LT(rd.storage_payload_bytes, rb.storage_payload_bytes);
  // Same workload either way: dedup is transparent to the outcome.
  EXPECT_EQ(rd.arrivals, rb.arrivals);
  EXPECT_EQ(rd.completed, rb.completed);
  expect_terminal_accounting(rb);
  expect_terminal_accounting(rd);
  // Counters mirror the result fields.
  EXPECT_EQ(rd.metrics.counter_total("dedup.local_hits"),
            rd.dedup_local_hits);
  EXPECT_EQ(rd.metrics.counter_total("dedup.zero_fills"),
            rd.dedup_zero_fills);
  EXPECT_EQ(rd.metrics.counter_total("dedup.peer_hits"), rd.dedup_peer_hits);
  EXPECT_EQ(rd.metrics.counter_total("dedup.fallbacks"), rd.dedup_fallbacks);
  EXPECT_EQ(rd.metrics.counter_total("dedup.bytes_served"),
            rd.dedup_bytes_served);
  // Compression actually engaged on the cache tier.
  EXPECT_GT(rd.metrics.counter_total("qcow2.compressed.clusters"), 0u);
}

TEST(Cloud, DedupDeterministicPerSeed) {
  const CloudResult r1 = run_cloud(dedup_config(32));
  const CloudResult r2 = run_cloud(dedup_config(32));
  EXPECT_EQ(r1.dedup_local_hits, r2.dedup_local_hits);
  EXPECT_EQ(r1.dedup_zero_fills, r2.dedup_zero_fills);
  EXPECT_EQ(r1.dedup_peer_hits, r2.dedup_peer_hits);
  EXPECT_EQ(r1.dedup_bytes_served, r2.dedup_bytes_served);
  EXPECT_DOUBLE_EQ(r1.deploy.mean, r2.deploy.mean);
  const std::string t1 = r1.metrics.to_text();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, r2.metrics.to_text());
}

TEST(Cloud, DedupOffEmitsNoDedupMetrics) {
  // The golden-pin contract: a dedup-off run must not even create the
  // dedup.* / qcow2.compressed.* metric families.
  const CloudResult r = run_cloud(small_config(33));
  const std::string t = r.metrics.to_text();
  EXPECT_EQ(t.find("dedup."), std::string::npos);
  EXPECT_EQ(t.find("qcow2.compressed."), std::string::npos);
  EXPECT_EQ(r.dedup_local_hits + r.dedup_zero_fills + r.dedup_peer_hits +
                r.dedup_fallbacks + r.dedup_bytes_served,
            0u);
}

TEST(Cloud, DedupIndexDropsEvictedImages) {
  // A cache quota far below the sibling working set forces evictions;
  // every eviction must also leave the fingerprint index (a stale entry
  // can only degrade to a miss, but the bookkeeping must stay exact for
  // the run to be deterministic and leak-free).
  CloudConfig cfg = dedup_config(34);
  // Two nodes whose cache pools hold ~3 images each, against 8 popular
  // images: constant adoption churn.
  cfg.cluster.compute_nodes = 2;
  cfg.cache_quota = 8 * MiB;
  cfg.cluster.node_cache_capacity = 24 * MiB;
  const CloudResult r = run_cloud(cfg);
  EXPECT_GT(r.cache_evictions, 0u);
  expect_terminal_accounting(r);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

TEST(Cloud, DedupSurvivesCrashAndSalvage) {
  // Node crashes wipe the per-node index; salvage re-adopts clean caches
  // and re-indexes their populated clusters. The run must stay lossless
  // and deterministic through both.
  CloudConfig cfg = dedup_config(35);
  cfg.cluster.compute_nodes = 4;
  cfg.failures.crashes.push_back({250.0, 120.0, 0});
  cfg.failures.crashes.push_back({500.0, 60.0, 1});
  const CloudResult r = run_cloud(cfg);
  EXPECT_EQ(r.node_crashes, 2);
  EXPECT_EQ(r.node_recoveries, 2);
  expect_terminal_accounting(r);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

TEST(Cloud, DedupWithPeerServesContentAcrossNodes) {
  // With the peer tier on, a fingerprint hit on a remote node's cache is
  // served over the fabric (content-keyed), not from NFS.
  CloudConfig cfg = dedup_config(36);
  cfg.cluster.compute_nodes = 4;
  cfg.peer_transfer = true;
  const CloudResult r = run_cloud(cfg);
  expect_terminal_accounting(r);
  EXPECT_GT(r.dedup_local_hits + r.dedup_peer_hits, 0u);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

// --- durable control plane --------------------------------------------------

// Restart config with warm history before the outage: a late restart on
// the default 8-node cloud, long enough after start that nodes hold
// populated disk caches worth adopting.
CloudConfig restart_config(std::uint64_t seed) {
  CloudConfig cfg = small_config(seed);
  cfg.manifest = true;
  cfg.restart_at_s.push_back(600.0);
  cfg.restart_down_s = 20.0;
  return cfg;
}

TEST(Cloud, RestartWithManifestReadoptsCaches) {
  const CloudResult on = run_cloud(restart_config(41));
  CloudConfig cold = restart_config(41);
  cold.manifest = false;
  const CloudResult off = run_cloud(cold);

  EXPECT_EQ(on.restarts, 1);
  EXPECT_EQ(off.restarts, 1);
  // The manifest path re-adopted verified caches and wrote durable state.
  EXPECT_GT(on.caches_readopted, 0);
  EXPECT_GT(on.manifest_publishes, 0u);
  // The cold path had nothing to adopt (files were scrubbed on the way
  // down) and so re-pays the storage node for the re-warm.
  EXPECT_EQ(off.caches_readopted, 0);
  EXPECT_EQ(off.manifest_publishes, 0u);
  EXPECT_LT(on.post_restart_storage_bytes, off.post_restart_storage_bytes);
  // Counters mirror the result fields.
  EXPECT_EQ(on.metrics.counter_total("cloud.adopt.ok"),
            static_cast<std::uint64_t>(on.caches_readopted));
  EXPECT_EQ(on.metrics.counter_total("cloud.adopt.failed"),
            static_cast<std::uint64_t>(on.adopt_failures));
  EXPECT_EQ(on.metrics.counter_total("cloud.adopt.stale"),
            static_cast<std::uint64_t>(on.adopt_stale));
  EXPECT_EQ(on.metrics.counter_total("cloud.restart.count"),
            static_cast<std::uint64_t>(on.restarts));
  EXPECT_EQ(on.metrics.counter_total("manifest.publishes"),
            on.manifest_publishes);
  // Restarts kill VMs and in-flight deployments; nothing may be lost.
  expect_terminal_accounting(on);
  expect_terminal_accounting(off);
}

TEST(Cloud, ManifestOffEmitsNoControlPlaneMetrics) {
  // The golden-pin contract: with manifest off and no restart/drain
  // configured, none of the new metric families may even exist.
  const CloudResult r = run_cloud(small_config(42));
  const std::string t = r.metrics.to_text();
  EXPECT_EQ(t.find("manifest."), std::string::npos);
  EXPECT_EQ(t.find("cloud.adopt."), std::string::npos);
  EXPECT_EQ(t.find("cloud.restart."), std::string::npos);
  EXPECT_EQ(t.find("cloud.drain."), std::string::npos);
  EXPECT_EQ(r.restarts + r.drains + r.caches_readopted + r.adopt_failures +
                r.adopt_stale,
            0);
  EXPECT_EQ(r.manifest_publishes + r.post_restart_storage_bytes, 0u);
}

TEST(Cloud, RestartDeterministicPerSeed) {
  const CloudResult r1 = run_cloud(restart_config(43));
  const CloudResult r2 = run_cloud(restart_config(43));
  EXPECT_EQ(r1.caches_readopted, r2.caches_readopted);
  EXPECT_EQ(r1.manifest_publishes, r2.manifest_publishes);
  EXPECT_EQ(r1.post_restart_storage_bytes, r2.post_restart_storage_bytes);
  const std::string t1 = r1.metrics.to_text();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, r2.metrics.to_text());
}

TEST(Cloud, DrainWaitsOutWorkThenReadopts) {
  CloudConfig cfg = small_config(44);
  cfg.manifest = true;
  cfg.drain_node = 0;
  cfg.drain_at_s = 400.0;
  cfg.drain_down_s = 30.0;
  const CloudResult r = run_cloud(cfg);
  EXPECT_EQ(r.drains, 1);
  EXPECT_EQ(r.metrics.counter_total("cloud.drain.count"), 1u);
  // A drain is graceful: it waits for running VMs and in-flight work, so
  // unlike a restart it kills nothing.
  EXPECT_EQ(r.vm_crashes, 0);
  EXPECT_EQ(r.crash_kills, 0);
  expect_terminal_accounting(r);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

TEST(Cloud, CrashDuringAdoptionDeregistersCleanly) {
  // Satellite 1: a node crash landing inside the post-restart adoption
  // pass must leave no half-adopted state — the crash sweep deregisters
  // the node from pool, peer, and dedup; recovery re-salvages. With peer
  // and dedup on, any leaked seed/index entry would poison determinism
  // or the terminal accounting.
  CloudConfig cfg = small_config(45);
  cfg.cluster.compute_nodes = 4;
  cfg.manifest = true;
  cfg.peer_transfer = true;
  cfg.restart_at_s.push_back(500.0);
  cfg.restart_down_s = 20.0;
  // Power-up is at t=520; adoption is verifying caches when this lands.
  cfg.failures.crashes.push_back({520.001, 60.0, 0});
  const CloudResult r = run_cloud(cfg);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.node_crashes, 1);
  EXPECT_EQ(r.node_recoveries, 1);
  expect_terminal_accounting(r);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

TEST(Cloud, RestartWithPeerAndDedupRebuildsTiers) {
  // Adoption must re-register surviving caches with the seed registry
  // and fingerprint index, not just the cache pool: post-restart fills
  // keep flowing peer-to-peer / by-fingerprint.
  CloudConfig cfg = dedup_config(46);
  cfg.cluster.compute_nodes = 4;
  cfg.peer_transfer = true;
  cfg.manifest = true;
  cfg.restart_at_s.push_back(600.0);
  cfg.restart_down_s = 20.0;
  const CloudResult r = run_cloud(cfg);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_GT(r.caches_readopted, 0);
  expect_terminal_accounting(r);
  const CloudResult r2 = run_cloud(cfg);
  EXPECT_EQ(r.metrics.to_text(), r2.metrics.to_text());
}

// --- scale ------------------------------------------------------------------

TEST(CloudStress, TenThousandNodesHundredThousandSessions) {
  // The ROADMAP north-star scale, shrunk in per-VM weight rather than in
  // fleet or session count: 10k nodes, ~100k sessions, a deliberately
  // tiny OS profile so the run exercises the scheduler core, the
  // placement index and the pooled event path — not simulated disk
  // bandwidth. Runs in the ASan+UBSan CI job too, where the pools
  // degrade to plain new/delete so every entry/frame lifetime is
  // sanitizer-visible.
  CloudConfig cfg;
  cfg.seed = 42;
  cfg.cluster.compute_nodes = 10000;
  cfg.cluster.node_cache_capacity = 8 * MiB;
  cfg.vm_slots_per_node = 4;
  boot::OsProfile p = boot::centos63();
  p.image_size = 1 * MiB;
  p.unique_read_bytes = 16 * KiB;
  p.cpu_seconds = 0.05;
  p.write_bytes = 4 * KiB;
  cfg.profile = p;
  cfg.cache_quota = 2 * MiB;
  cfg.cache_cluster_bits = 12;
  cfg.workload.num_vmis = 16;
  cfg.workload.mean_interarrival_s = 0.1;  // ~100k arrivals
  cfg.workload.min_lifetime_s = 20.0;
  cfg.workload.mean_extra_lifetime_s = 40.0;
  cfg.horizon_s = 10000.0;
  const CloudResult r = run_cloud(cfg);
  expect_terminal_accounting(r);
  EXPECT_GT(r.arrivals, 90000);
  EXPECT_GT(r.completed, 90000);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_GT(r.sim_events, static_cast<std::uint64_t>(1000000));
  EXPECT_GT(r.cache_hit_ratio, 0.5);
}

}  // namespace
}  // namespace vmic::cloud
