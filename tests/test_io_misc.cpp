// Coverage for the io plumbing: MountTable routing, shared MemBackend
// views, and the writability dance at the backend level.
#include <gtest/gtest.h>

#include "io/mem_backend.hpp"
#include "io/mem_store.hpp"
#include "io/mount_table.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace vmic::io {
namespace {

using sim::sync_wait;
using vmic::literals::operator""_KiB;

TEST(MountTable, RoutesByPrefix) {
  MemImageStore a, b;
  (void)a.create_file("x");
  (void)b.create_file("y");
  MountTable mt;
  mt.mount("a", &a);
  mt.mount("b", &b);

  EXPECT_TRUE(mt.exists("a/x"));
  EXPECT_FALSE(mt.exists("a/y"));
  EXPECT_TRUE(mt.exists("b/y"));
  EXPECT_TRUE(mt.open_file("a/x", true).ok());
  EXPECT_EQ(mt.open_file("b/x", true).error(), Errc::not_found);
}

TEST(MountTable, UnknownPrefixAndBareNamesFail) {
  MemImageStore a;
  MountTable mt;
  mt.mount("a", &a);
  EXPECT_EQ(mt.open_file("c/x", true).error(), Errc::not_found);
  EXPECT_EQ(mt.open_file("noslash", true).error(), Errc::not_found);
  EXPECT_FALSE(mt.exists("noslash"));
}

TEST(MountTable, CreateRoutesToMount) {
  MemImageStore a;
  MountTable mt;
  mt.mount("a", &a);
  ASSERT_TRUE(mt.create_file("a/new").ok());
  EXPECT_TRUE(a.exists("new"));
}

TEST(MountTable, NestedPathKeptAfterPrefix) {
  // Only the first segment routes; the rest is the name in the mount.
  MemImageStore a;
  MountTable mt;
  mt.mount("a", &a);
  ASSERT_TRUE(mt.create_file("a/sub/file").ok());
  EXPECT_TRUE(a.exists("sub/file"));
}

TEST(MemBackend, SharedBufferViewsSeeEachOther) {
  SparseBuffer shared;
  MemBackend w{&shared};
  MemBackend r{&shared};
  r.set_read_only(true);

  std::vector<std::uint8_t> data(4_KiB, 0x42);
  ASSERT_TRUE(sync_wait(w.pwrite(100, data)).ok());
  std::vector<std::uint8_t> out(4_KiB);
  ASSERT_TRUE(sync_wait(r.pread(100, out)).ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(sync_wait(r.pwrite(0, data)).error(), Errc::read_only);
  EXPECT_EQ(r.size(), w.size());
}

TEST(MemBackend, WritabilityToggles) {
  // The §4.3 reopen dance at backend level: demote after probing.
  MemBackend be;
  std::vector<std::uint8_t> data(512, 1);
  ASSERT_TRUE(sync_wait(be.pwrite(0, data)).ok());
  be.set_read_only(true);
  EXPECT_EQ(sync_wait(be.pwrite(512, data)).error(), Errc::read_only);
  EXPECT_EQ(sync_wait(be.truncate(0)).error(), Errc::read_only);
  be.set_read_only(false);
  EXPECT_TRUE(sync_wait(be.pwrite(512, data)).ok());
}

TEST(MemImageStore, CreateTruncatesExisting) {
  MemImageStore store;
  {
    auto be = store.create_file("f");
    std::vector<std::uint8_t> data(1000, 9);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  auto be2 = store.create_file("f");
  EXPECT_EQ((*be2)->size(), 0u);
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
}

}  // namespace
}  // namespace vmic::io
