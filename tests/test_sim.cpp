// Unit tests for the discrete-event engine: scheduling order, coroutine
// task composition, synchronisation primitives, determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/env.hpp"
#include "sim/run.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vmic::sim {
namespace {

TEST(SimEnv, StartsAtZero) {
  SimEnv env;
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(env.pending_events(), 0u);
}

TEST(SimEnv, CallbacksRunInTimeOrder) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(30, [&] { order.push_back(3); });
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(20, [&] { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now(), 30);
}

TEST(SimEnv, TiesBreakByInsertionOrder) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(10, [&] { order.push_back(2); });
  env.call_at(10, [&] { order.push_back(3); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEnv, CancelledTimerDoesNotFire) {
  SimEnv env;
  bool fired = false;
  auto id = env.call_at(10, [&] { fired = true; });
  env.cancel(id);
  env.run();
  EXPECT_FALSE(fired);
}

TEST(SimEnv, RunUntilStopsAtDeadline) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(20, [&] { order.push_back(2); });
  env.call_at(30, [&] { order.push_back(3); });
  EXPECT_FALSE(env.run_until(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(env.now(), 20);
  EXPECT_TRUE(env.run_until(100));
  EXPECT_EQ(order.size(), 3u);
}

Task<int> return_42() { co_return 42; }

TEST(Task, RunSyncReturnsValue) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, return_42()), 42);
}

Task<int> add_after_delay(SimEnv& env, int a, int b) {
  co_await env.delay(100);
  co_return a + b;
}

TEST(Task, DelayAdvancesClock) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, add_after_delay(env, 2, 3)), 5);
  EXPECT_EQ(env.now(), 100);
}

Task<int> nested(SimEnv& env) {
  const int x = co_await add_after_delay(env, 1, 2);
  const int y = co_await add_after_delay(env, x, 10);
  co_return y;
}

TEST(Task, NestedAwaitsCompose) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, nested(env)), 13);
  EXPECT_EQ(env.now(), 200);
}

TEST(Task, SyncWaitOnImmediateTask) {
  // Host paths (no simulated time) can run without an environment.
  EXPECT_EQ(sync_wait(return_42()), 42);
}

Task<void> append_after(SimEnv& env, std::vector<int>& log, SimTime t, int v) {
  co_await env.delay(t);
  log.push_back(v);
}

TEST(SimEnv, SpawnedTasksInterleaveDeterministically) {
  SimEnv env;
  std::vector<int> log;
  env.spawn(append_after(env, log, 30, 1));
  env.spawn(append_after(env, log, 10, 2));
  env.spawn(append_after(env, log, 20, 3));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(env.live_tasks(), 0u);
}

TEST(SimEnv, LiveTaskAccounting) {
  SimEnv env;
  std::vector<int> log;
  env.spawn(append_after(env, log, 10, 1));
  env.spawn(append_after(env, log, 20, 2));
  EXPECT_EQ(env.live_tasks(), 2u);
  env.run();
  EXPECT_EQ(env.live_tasks(), 0u);
}

// --------------------------------------------------------------------------
// Event
// --------------------------------------------------------------------------

Task<void> wait_and_log(SimEnv& env, Event& ev, std::vector<int>& log, int id) {
  (void)env;
  co_await ev.wait();
  log.push_back(id);
}

Task<void> trigger_at(SimEnv& env, Event& ev, SimTime t) {
  co_await env.delay(t);
  ev.trigger();
}

TEST(Event, BroadcastWakesAllWaitersFifo) {
  SimEnv env;
  Event ev{env};
  std::vector<int> log;
  env.spawn(wait_and_log(env, ev, log, 1));
  env.spawn(wait_and_log(env, ev, log, 2));
  env.spawn(wait_and_log(env, ev, log, 3));
  env.spawn(trigger_at(env, ev, 50));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now(), 50);
}

TEST(Event, WaitAfterTriggerCompletesImmediately) {
  SimEnv env;
  Event ev{env};
  ev.trigger();
  std::vector<int> log;
  env.spawn(wait_and_log(env, ev, log, 7));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{7}));
  EXPECT_EQ(env.now(), 0);
}

// --------------------------------------------------------------------------
// Mutex
// --------------------------------------------------------------------------

Task<void> critical(SimEnv& env, Mutex& m, std::vector<int>& log, int id,
                    SimTime hold) {
  auto guard = co_await m.lock();
  log.push_back(id);
  co_await env.delay(hold);
  log.push_back(-id);
}

TEST(Mutex, SerializesInFifoOrder) {
  SimEnv env;
  Mutex m{env};
  std::vector<int> log;
  env.spawn(critical(env, m, log, 1, 100));
  env.spawn(critical(env, m, log, 2, 100));
  env.spawn(critical(env, m, log, 3, 100));
  env.run();
  // No interleaving inside critical sections, FIFO hand-off.
  EXPECT_EQ(log, (std::vector<int>{1, -1, 2, -2, 3, -3}));
  EXPECT_EQ(env.now(), 300);
  EXPECT_FALSE(m.locked());
}

// --------------------------------------------------------------------------
// Semaphore
// --------------------------------------------------------------------------

Task<void> sem_user(SimEnv& env, Semaphore& s, int& active, int& peak,
                    SimTime hold) {
  co_await s.acquire();
  ++active;
  peak = std::max(peak, active);
  co_await env.delay(hold);
  --active;
  s.release();
}

TEST(Semaphore, LimitsConcurrency) {
  SimEnv env;
  Semaphore s{env, 2};
  int active = 0, peak = 0;
  for (int i = 0; i < 6; ++i) env.spawn(sem_user(env, s, active, peak, 100));
  env.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  // 6 holders, 2 at a time, 100 each => 300 total.
  EXPECT_EQ(env.now(), 300);
  EXPECT_EQ(s.available(), 2u);
}

// --------------------------------------------------------------------------
// RangeLock
// --------------------------------------------------------------------------

Task<void> range_user(SimEnv& env, RangeLock& rl, std::uint64_t lo,
                      std::uint64_t hi, SimTime hold, std::vector<SimTime>& done,
                      std::size_t id, std::vector<bool>& waited) {
  auto guard = co_await rl.acquire(lo, hi);
  waited[id] = guard.waited();
  co_await env.delay(hold);
  done[id] = env.now();
}

TEST(RangeLock, DisjointRangesProceedInParallel) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(4, 0);
  std::vector<bool> waited(4, true);
  for (std::size_t i = 0; i < 4; ++i)
    env.spawn(range_user(env, rl, i * 10, i * 10 + 10, 100, done, i, waited));
  env.run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(done[i], 100) << "user " << i;
    EXPECT_FALSE(waited[i]) << "user " << i;
  }
  EXPECT_EQ(rl.held_count(), 0u);
  EXPECT_EQ(rl.waiting_count(), 0u);
}

TEST(RangeLock, OverlappingAcquisitionsSerializeFifo) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(3, 0);
  std::vector<bool> waited(3, false);
  env.spawn(range_user(env, rl, 0, 10, 100, done, 0, waited));
  env.spawn(range_user(env, rl, 5, 15, 100, done, 1, waited));
  env.spawn(range_user(env, rl, 8, 9, 100, done, 2, waited));
  std::size_t held_mid = 0, waiting_mid = 0;
  env.call_at(10, [&] {
    held_mid = rl.held_count();
    waiting_mid = rl.waiting_count();
  });
  env.run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_FALSE(waited[0]);
  EXPECT_TRUE(waited[1]);
  EXPECT_TRUE(waited[2]);
  EXPECT_EQ(held_mid, 1u);
  EXPECT_EQ(waiting_mid, 2u);
}

TEST(RangeLock, WaiterNeedsAllOverlapsClear) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(3, 0);
  std::vector<bool> waited(3, false);
  env.spawn(range_user(env, rl, 0, 10, 50, done, 0, waited));    // A
  env.spawn(range_user(env, rl, 10, 20, 150, done, 1, waited));  // B
  env.spawn(range_user(env, rl, 5, 15, 10, done, 2, waited));    // C
  env.run();
  // C overlaps both A (done at 50) and B (done at 150); it can only start
  // once the later of the two releases.
  EXPECT_EQ(done[0], 50);
  EXPECT_EQ(done[1], 150);
  EXPECT_EQ(done[2], 160);
  EXPECT_TRUE(waited[2]);
  EXPECT_EQ(rl.held_count(), 0u);
}

// --------------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------------

Task<void> busy_worker(SimEnv& env, Mutex& m, std::vector<SimTime>& stamps,
                       int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto g = co_await m.lock();
    co_await env.delay(7);
    stamps.push_back(env.now());
  }
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    SimEnv env;
    Mutex m{env};
    std::vector<SimTime> stamps;
    for (int w = 0; w < 5; ++w) env.spawn(busy_worker(env, m, stamps, 10));
    env.run();
    return stamps;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
}

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_millis(2.0), 2'000'000);
  EXPECT_EQ(from_micros(3.0), 3'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
}

}  // namespace
}  // namespace vmic::sim
