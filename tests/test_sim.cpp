// Unit tests for the discrete-event engine: scheduling order, coroutine
// task composition, synchronisation primitives, determinism — plus the
// differential and property suites that pin the calendar-queue scheduler
// to the reference semantics (the contract every golden pin depends on).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "sim/env.hpp"
#include "sim/run.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vmic::sim {
namespace {

TEST(SimEnv, StartsAtZero) {
  SimEnv env;
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(env.pending_events(), 0u);
}

TEST(SimEnv, CallbacksRunInTimeOrder) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(30, [&] { order.push_back(3); });
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(20, [&] { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now(), 30);
}

TEST(SimEnv, TiesBreakByInsertionOrder) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(10, [&] { order.push_back(2); });
  env.call_at(10, [&] { order.push_back(3); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEnv, CancelledTimerDoesNotFire) {
  SimEnv env;
  bool fired = false;
  auto id = env.call_at(10, [&] { fired = true; });
  env.cancel(id);
  env.run();
  EXPECT_FALSE(fired);
}

TEST(SimEnv, RunUntilStopsAtDeadline) {
  SimEnv env;
  std::vector<int> order;
  env.call_at(10, [&] { order.push_back(1); });
  env.call_at(20, [&] { order.push_back(2); });
  env.call_at(30, [&] { order.push_back(3); });
  EXPECT_FALSE(env.run_until(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(env.now(), 20);
  EXPECT_TRUE(env.run_until(100));
  EXPECT_EQ(order.size(), 3u);
}

Task<int> return_42() { co_return 42; }

TEST(Task, RunSyncReturnsValue) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, return_42()), 42);
}

Task<int> add_after_delay(SimEnv& env, int a, int b) {
  co_await env.delay(100);
  co_return a + b;
}

TEST(Task, DelayAdvancesClock) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, add_after_delay(env, 2, 3)), 5);
  EXPECT_EQ(env.now(), 100);
}

Task<int> nested(SimEnv& env) {
  const int x = co_await add_after_delay(env, 1, 2);
  const int y = co_await add_after_delay(env, x, 10);
  co_return y;
}

TEST(Task, NestedAwaitsCompose) {
  SimEnv env;
  EXPECT_EQ(run_sync(env, nested(env)), 13);
  EXPECT_EQ(env.now(), 200);
}

TEST(Task, SyncWaitOnImmediateTask) {
  // Host paths (no simulated time) can run without an environment.
  EXPECT_EQ(sync_wait(return_42()), 42);
}

Task<void> append_after(SimEnv& env, std::vector<int>& log, SimTime t, int v) {
  co_await env.delay(t);
  log.push_back(v);
}

TEST(SimEnv, SpawnedTasksInterleaveDeterministically) {
  SimEnv env;
  std::vector<int> log;
  env.spawn(append_after(env, log, 30, 1));
  env.spawn(append_after(env, log, 10, 2));
  env.spawn(append_after(env, log, 20, 3));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(env.live_tasks(), 0u);
}

TEST(SimEnv, LiveTaskAccounting) {
  SimEnv env;
  std::vector<int> log;
  env.spawn(append_after(env, log, 10, 1));
  env.spawn(append_after(env, log, 20, 2));
  EXPECT_EQ(env.live_tasks(), 2u);
  env.run();
  EXPECT_EQ(env.live_tasks(), 0u);
}

// --------------------------------------------------------------------------
// Event
// --------------------------------------------------------------------------

Task<void> wait_and_log(SimEnv& env, Event& ev, std::vector<int>& log, int id) {
  (void)env;
  co_await ev.wait();
  log.push_back(id);
}

Task<void> trigger_at(SimEnv& env, Event& ev, SimTime t) {
  co_await env.delay(t);
  ev.trigger();
}

TEST(Event, BroadcastWakesAllWaitersFifo) {
  SimEnv env;
  Event ev{env};
  std::vector<int> log;
  env.spawn(wait_and_log(env, ev, log, 1));
  env.spawn(wait_and_log(env, ev, log, 2));
  env.spawn(wait_and_log(env, ev, log, 3));
  env.spawn(trigger_at(env, ev, 50));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now(), 50);
}

TEST(Event, WaitAfterTriggerCompletesImmediately) {
  SimEnv env;
  Event ev{env};
  ev.trigger();
  std::vector<int> log;
  env.spawn(wait_and_log(env, ev, log, 7));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{7}));
  EXPECT_EQ(env.now(), 0);
}

// --------------------------------------------------------------------------
// Mutex
// --------------------------------------------------------------------------

Task<void> critical(SimEnv& env, Mutex& m, std::vector<int>& log, int id,
                    SimTime hold) {
  auto guard = co_await m.lock();
  log.push_back(id);
  co_await env.delay(hold);
  log.push_back(-id);
}

TEST(Mutex, SerializesInFifoOrder) {
  SimEnv env;
  Mutex m{env};
  std::vector<int> log;
  env.spawn(critical(env, m, log, 1, 100));
  env.spawn(critical(env, m, log, 2, 100));
  env.spawn(critical(env, m, log, 3, 100));
  env.run();
  // No interleaving inside critical sections, FIFO hand-off.
  EXPECT_EQ(log, (std::vector<int>{1, -1, 2, -2, 3, -3}));
  EXPECT_EQ(env.now(), 300);
  EXPECT_FALSE(m.locked());
}

// --------------------------------------------------------------------------
// Semaphore
// --------------------------------------------------------------------------

Task<void> sem_user(SimEnv& env, Semaphore& s, int& active, int& peak,
                    SimTime hold) {
  co_await s.acquire();
  ++active;
  peak = std::max(peak, active);
  co_await env.delay(hold);
  --active;
  s.release();
}

TEST(Semaphore, LimitsConcurrency) {
  SimEnv env;
  Semaphore s{env, 2};
  int active = 0, peak = 0;
  for (int i = 0; i < 6; ++i) env.spawn(sem_user(env, s, active, peak, 100));
  env.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  // 6 holders, 2 at a time, 100 each => 300 total.
  EXPECT_EQ(env.now(), 300);
  EXPECT_EQ(s.available(), 2u);
}

// --------------------------------------------------------------------------
// RangeLock
// --------------------------------------------------------------------------

Task<void> range_user(SimEnv& env, RangeLock& rl, std::uint64_t lo,
                      std::uint64_t hi, SimTime hold, std::vector<SimTime>& done,
                      std::size_t id, std::vector<bool>& waited) {
  auto guard = co_await rl.acquire(lo, hi);
  waited[id] = guard.waited();
  co_await env.delay(hold);
  done[id] = env.now();
}

TEST(RangeLock, DisjointRangesProceedInParallel) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(4, 0);
  std::vector<bool> waited(4, true);
  for (std::size_t i = 0; i < 4; ++i)
    env.spawn(range_user(env, rl, i * 10, i * 10 + 10, 100, done, i, waited));
  env.run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(done[i], 100) << "user " << i;
    EXPECT_FALSE(waited[i]) << "user " << i;
  }
  EXPECT_EQ(rl.held_count(), 0u);
  EXPECT_EQ(rl.waiting_count(), 0u);
}

TEST(RangeLock, OverlappingAcquisitionsSerializeFifo) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(3, 0);
  std::vector<bool> waited(3, false);
  env.spawn(range_user(env, rl, 0, 10, 100, done, 0, waited));
  env.spawn(range_user(env, rl, 5, 15, 100, done, 1, waited));
  env.spawn(range_user(env, rl, 8, 9, 100, done, 2, waited));
  std::size_t held_mid = 0, waiting_mid = 0;
  env.call_at(10, [&] {
    held_mid = rl.held_count();
    waiting_mid = rl.waiting_count();
  });
  env.run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_FALSE(waited[0]);
  EXPECT_TRUE(waited[1]);
  EXPECT_TRUE(waited[2]);
  EXPECT_EQ(held_mid, 1u);
  EXPECT_EQ(waiting_mid, 2u);
}

TEST(RangeLock, WaiterNeedsAllOverlapsClear) {
  SimEnv env;
  RangeLock rl;
  std::vector<SimTime> done(3, 0);
  std::vector<bool> waited(3, false);
  env.spawn(range_user(env, rl, 0, 10, 50, done, 0, waited));    // A
  env.spawn(range_user(env, rl, 10, 20, 150, done, 1, waited));  // B
  env.spawn(range_user(env, rl, 5, 15, 10, done, 2, waited));    // C
  env.run();
  // C overlaps both A (done at 50) and B (done at 150); it can only start
  // once the later of the two releases.
  EXPECT_EQ(done[0], 50);
  EXPECT_EQ(done[1], 150);
  EXPECT_EQ(done[2], 160);
  EXPECT_TRUE(waited[2]);
  EXPECT_EQ(rl.held_count(), 0u);
}

// --------------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------------

Task<void> busy_worker(SimEnv& env, Mutex& m, std::vector<SimTime>& stamps,
                       int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto g = co_await m.lock();
    co_await env.delay(7);
    stamps.push_back(env.now());
  }
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    SimEnv env;
    Mutex m{env};
    std::vector<SimTime> stamps;
    for (int w = 0; w < 5; ++w) env.spawn(busy_worker(env, m, stamps, 10));
    env.run();
    return stamps;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
}

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_millis(2.0), 2'000'000);
  EXPECT_EQ(from_micros(3.0), 3'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
}

// --------------------------------------------------------------------------
// Differential scheduler suite
//
// A minimal reference scheduler (plain vector, min by (time, seq), lazy
// dead flags — the semantics, with none of the production machinery) and
// the two SimEnv queue implementations are driven through identical
// seeded scripts of interleaved insert / cancel / reschedule / spawn
// operations, including adversarial same-timestamp bursts. All three
// must produce the identical fire order. This is the pin that lets the
// event queue be swapped fearlessly.
// --------------------------------------------------------------------------

/// Abstract driver surface: tags identify logical events across the
/// implementations under test.
class SchedUnderTest {
 public:
  virtual ~SchedUnderTest() = default;
  virtual SimTime now() const = 0;
  virtual void schedule(SimTime t, int tag) = 0;
  /// Spawn semantics: a detached task starts at now (one queue
  /// round-trip), then delays `d` and fires `tag`.
  virtual void spawn_delayed(SimTime d, int tag) = 0;
  virtual void cancel(int tag) = 0;
  virtual void run() = 0;
};

/// The reference: an unindexed event list with exact (time, seq) order.
class RefSched : public SchedUnderTest {
 public:
  explicit RefSched(std::function<void(RefSched&, int)> on_fire)
      : on_fire_(std::move(on_fire)) {}

  SimTime now() const override { return now_; }

  void schedule(SimTime t, int tag) override {
    evs_.push_back({t, seq_++, tag, /*spawn_delay=*/-1, true, false});
  }

  void spawn_delayed(SimTime d, int tag) override {
    // The spawn wrapper consumes one queue round-trip at `now` before
    // the delay starts — mirror it with a hidden event. Spawned tasks
    // have no timer id, so neither wrapper nor payload is cancellable.
    evs_.push_back({now_, seq_++, tag, d, false, false});
  }

  void cancel(int tag) override {
    for (auto& e : evs_) {
      if (e.tag == tag && e.cancellable) e.dead = true;
    }
  }

  void run() override {
    for (;;) {
      std::size_t best = evs_.size();
      for (std::size_t i = 0; i < evs_.size(); ++i) {
        if (evs_[i].dead) continue;
        if (best == evs_.size() || evs_[i].time < evs_[best].time ||
            (evs_[i].time == evs_[best].time &&
             evs_[i].seq < evs_[best].seq)) {
          best = i;
        }
      }
      if (best == evs_.size()) return;
      Ev e = evs_[best];
      evs_[best].dead = true;
      now_ = e.time;
      if (e.spawn_delay >= 0) {
        // Hidden spawn wrapper: the payload event starts its delay now.
        evs_.push_back({now_ + e.spawn_delay, seq_++, e.tag, -1, false,
                        false});
      } else {
        on_fire_(*this, e.tag);
      }
    }
  }

 private:
  struct Ev {
    SimTime time;
    std::uint64_t seq;
    int tag;
    SimTime spawn_delay;  ///< >= 0: hidden spawn wrapper event
    bool cancellable;     ///< created via schedule() (has a timer id)
    bool dead;
  };
  std::vector<Ev> evs_;
  std::uint64_t seq_ = 0;
  SimTime now_ = 0;
  std::function<void(RefSched&, int)> on_fire_;
};

/// SimEnv under either queue implementation.
class EnvSched : public SchedUnderTest {
 public:
  EnvSched(SimEnv::QueueImpl impl,
           std::function<void(EnvSched&, int)> on_fire)
      : env_(impl), on_fire_(std::move(on_fire)) {}

  SimTime now() const override { return env_.now(); }

  void schedule(SimTime t, int tag) override {
    ids_[tag] = env_.call_at(t, [this, tag] { on_fire_(*this, tag); });
  }

  void spawn_delayed(SimTime d, int tag) override {
    env_.spawn(delayed_fire(d, tag));
  }

  void cancel(int tag) override {
    if (auto it = ids_.find(tag); it != ids_.end()) env_.cancel(it->second);
  }

  void run() override { env_.run(); }

  SimEnv& env() { return env_; }

 private:
  Task<void> delayed_fire(SimTime d, int tag) {
    co_await env_.delay(d);
    on_fire_(*this, tag);
  }

  SimEnv env_;
  std::map<int, SimEnv::TimerId> ids_;
  std::function<void(EnvSched&, int)> on_fire_;
};

/// One differential run: the initial script and each event's follow-up
/// actions are derived deterministically from (seed, tag), so every
/// implementation executes the same logical workload. Returns the fire
/// order.
class DiffScript {
 public:
  explicit DiffScript(std::uint64_t seed) : seed_(seed) {}

  std::vector<int> drive(SchedUnderTest& s) {
    fired_.clear();
    next_tag_ = 0;
    std::mt19937_64 rng(seed_);
    // Initial burst: many events, coarse times (collisions guaranteed),
    // some scheduled then immediately cancelled or rescheduled.
    const int initial = 80;
    for (int i = 0; i < initial; ++i) {
      const int tag = next_tag_++;
      s.schedule(static_cast<SimTime>(rng() % 64), tag);
      const std::uint64_t roll = rng() % 10;
      if (roll == 0 && tag > 0) {
        s.cancel(static_cast<int>(rng() % static_cast<std::uint64_t>(tag)));
      } else if (roll == 1) {
        // Reschedule: cancel and re-add under a fresh tag.
        s.cancel(tag);
        s.schedule(static_cast<SimTime>(rng() % 64), next_tag_++);
      } else if (roll == 2) {
        s.spawn_delayed(static_cast<SimTime>(rng() % 32), next_tag_++);
      }
    }
    s.run();
    return fired_;
  }

  /// Follow-up behaviour on fire, identical across implementations.
  void on_fire(SchedUnderTest& s, int tag) {
    fired_.push_back(tag);
    std::mt19937_64 rng(seed_ ^ (0x9e3779b97f4a7c15ull *
                                 static_cast<std::uint64_t>(tag + 1)));
    const std::uint64_t n = rng() % 3;  // 0..2 follow-up actions
    for (std::uint64_t i = 0; i < n && next_tag_ < 4000; ++i) {
      switch (rng() % 4) {
        case 0:
          s.schedule(s.now() + static_cast<SimTime>(rng() % 50), next_tag_++);
          break;
        case 1:
          // Same-timestamp burst at the current instant.
          s.schedule(s.now(), next_tag_++);
          s.schedule(s.now(), next_tag_++);
          break;
        case 2:
          // Cancel an arbitrary earlier tag — often already fired or
          // cancelled; must be an exact no-op then.
          s.cancel(static_cast<int>(rng() %
                                    static_cast<std::uint64_t>(next_tag_)));
          break;
        case 3:
          s.spawn_delayed(static_cast<SimTime>(rng() % 20), next_tag_++);
          break;
      }
    }
  }

 private:
  std::uint64_t seed_;
  std::vector<int> fired_;
  int next_tag_ = 0;
};

std::vector<int> run_reference(std::uint64_t seed) {
  DiffScript script(seed);
  RefSched ref([&script](RefSched& s, int tag) { script.on_fire(s, tag); });
  return script.drive(ref);
}

std::vector<int> run_env(std::uint64_t seed, SimEnv::QueueImpl impl) {
  DiffScript script(seed);
  EnvSched env(impl,
               [&script](EnvSched& s, int tag) { script.on_fire(s, tag); });
  return script.drive(env);
}

TEST(SchedulerDifferential, CalendarAndHeapMatchReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto ref = run_reference(seed);
    ASSERT_GT(ref.size(), 50u) << "seed " << seed << ": degenerate script";
    EXPECT_EQ(run_env(seed, SimEnv::QueueImpl::calendar), ref)
        << "calendar diverged from reference, seed " << seed;
    EXPECT_EQ(run_env(seed, SimEnv::QueueImpl::heap), ref)
        << "heap diverged from reference, seed " << seed;
  }
}

TEST(SchedulerDifferential, AdversarialSameTimestampBurst) {
  // Everything at one instant: pure seq-order sorting, across bucket
  // boundaries and through calendar resizes.
  for (auto impl : {SimEnv::QueueImpl::calendar, SimEnv::QueueImpl::heap}) {
    SimEnv env(impl);
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      env.call_at(777, [&order, i] { order.push_back(i); });
    }
    env.run();
    ASSERT_EQ(order.size(), 500u);
    for (int i = 0; i < 500; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

// --------------------------------------------------------------------------
// Property / fuzz: ordering invariants under randomized schedules
// --------------------------------------------------------------------------

TEST(SchedulerProperty, RandomizedInvariants) {
  // (a) an event never fires before its deadline (it fires exactly at
  //     it — simulated time is discrete and exact);
  // (b) same-time events fire in schedule (seq) order;
  // (c) cancelled timers never fire;
  // (d) pending_events() is exact after cancellation (calendar queue).
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    std::mt19937_64 rng(seed);
    SimEnv env(SimEnv::QueueImpl::calendar);
    struct Rec {
      SimTime due;
      std::uint64_t order;  ///< global schedule order (seq proxy)
      SimEnv::TimerId id;
      bool cancelled = false;
      bool fired = false;
    };
    std::vector<Rec> recs;
    std::uint64_t fire_count = 0;
    SimTime last_time = 0;
    std::uint64_t last_order = 0;
    const int n = 400;
    recs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Clustered times to force ties; occasional far-future outliers to
      // force sparse year-scans and width adaptation.
      SimTime t = static_cast<SimTime>(rng() % 200);
      if (rng() % 17 == 0) t += static_cast<SimTime>(1) << 30;
      const std::size_t k = recs.size();
      recs.push_back({t, static_cast<std::uint64_t>(i), 0, false, false});
      recs[k].id = env.call_at(t, [&, k] {
        Rec& r = recs[k];
        EXPECT_FALSE(r.cancelled) << "cancelled timer fired";
        EXPECT_EQ(env.now(), r.due) << "fired off its deadline";
        if (env.now() == last_time) {
          EXPECT_GT(r.order, last_order) << "same-time events out of order";
        } else {
          EXPECT_GT(env.now(), last_time) << "time went backwards";
        }
        last_time = env.now();
        last_order = r.order;
        r.fired = true;
        ++fire_count;
      });
    }
    // Cancel a random subset before anything runs.
    std::size_t cancelled = 0;
    for (auto& r : recs) {
      if (rng() % 4 == 0) {
        env.cancel(r.id);
        r.cancelled = true;
        ++cancelled;
      }
    }
    EXPECT_EQ(env.pending_events(), recs.size() - cancelled);
    // Double-cancel is a no-op on the count.
    for (auto& r : recs) {
      if (r.cancelled) env.cancel(r.id);
    }
    EXPECT_EQ(env.pending_events(), recs.size() - cancelled);
    env.run();
    EXPECT_EQ(fire_count, recs.size() - cancelled);
    EXPECT_EQ(env.pending_events(), 0u);
    // Cancel-after-fire: exact no-op, including on the count.
    for (auto& r : recs) env.cancel(r.id);
    EXPECT_EQ(env.pending_events(), 0u);
    for (const auto& r : recs) EXPECT_NE(r.fired, r.cancelled);
  }
}

TEST(SchedulerProperty, HeapModeKeepsLegacyPendingContract) {
  // The ablation queue retains the pre-change tombstone accounting:
  // cancelling a live timer decrements the count, but a cancel that
  // never matches (stale id) skews it — documented legacy behaviour.
  SimEnv env(SimEnv::QueueImpl::heap);
  auto a = env.call_at(10, [] {});
  (void)env.call_at(20, [] {});
  EXPECT_EQ(env.pending_events(), 2u);
  env.cancel(a);
  EXPECT_EQ(env.pending_events(), 1u);
  env.run();
  EXPECT_EQ(env.now(), 20);
}

TEST(SchedulerProperty, TimerIdsDoNotAliasAcrossSlotReuse) {
  // Fire and recycle the same slot repeatedly; a stale id retained from
  // an earlier generation must never cancel the slot's new occupant.
  SimEnv env(SimEnv::QueueImpl::calendar);
  SimEnv::TimerId first = env.call_at(1, [] {});
  env.run();
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    (void)env.call_at(env.now() + 1, [&fired] { ++fired; });
    env.cancel(first);  // stale generation: exact no-op every time
    env.run();
  }
  EXPECT_EQ(fired, 100);
}

TEST(SchedulerProperty, CalendarResizesUnderLoadAndStaysOrdered) {
  // Push far past the initial 64 buckets to force grows, then drain to
  // force shrinks, asserting order throughout.
  SimEnv env(SimEnv::QueueImpl::calendar);
  std::mt19937_64 rng(7);
  std::vector<std::pair<SimTime, int>> expect;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = static_cast<SimTime>(rng() % 100000);
    expect.emplace_back(t, i);
    env.call_at(t, [] {});
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t at = 0;
  SimEnv env2(SimEnv::QueueImpl::calendar);
  std::mt19937_64 rng2(7);
  bool ok = true;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = static_cast<SimTime>(rng2() % 100000);
    env2.call_at(t, [&, i, t] {
      if (at >= expect.size() || expect[at].first != t ||
          expect[at].second != i) {
        ok = false;
      }
      ++at;
    });
  }
  env2.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(at, expect.size());
  EXPECT_EQ(env2.pending_events(), 0u);
}

}  // namespace
}  // namespace vmic::sim
