// vmic::peer tests: seed-registry bookkeeping (coverage-gated, least-
// loaded, deterministic picks), NIC-fabric transfer timing and deadline
// behaviour, standalone no-backing qcow2 opens, the qcow2 backing-fetch
// hook / CoR fill observer, and the cloud engine with the tier on:
// storage-node traffic drops, runs stay byte-identical, pinned seeds
// survive eviction pressure, crashes fall back to NFS cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "cache/pool.hpp"
#include "cloud/engine.hpp"
#include "io/mount_table.hpp"
#include "peer/fabric.hpp"
#include "peer/registry.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/units.hpp"

namespace vmic::peer {
namespace {

using sim::SimEnv;
using sim::Task;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

// --- seed registry ----------------------------------------------------------

TEST(SeedRegistry, CoverageGatesPicksAndTiesGoToLowestId) {
  SeedRegistry reg;
  EXPECT_TRUE(reg.register_seed(1, "img-0"));
  EXPECT_FALSE(reg.register_seed(1, "img-0"));  // idempotent
  EXPECT_TRUE(reg.register_seed(2, "img-0"));
  reg.add_coverage(1, "img-0", 0, 4096);
  reg.add_coverage(2, "img-0", 0, 8192);
  // Coverage on a node that never registered is dropped, not recorded.
  reg.add_coverage(3, "img-0", 0, 1_MiB);
  EXPECT_EQ(reg.coverage(3, "img-0"), nullptr);

  const std::set<int> cands{1, 2, 3};
  // Both nodes cover [0, 4096) at load 0: deterministic lowest id wins.
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 0, 4096, -1, 4), 1);
  // Only node 2 covers the tail.
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 4096, 8192, -1, 4), 2);
  // The requester is excluded even when it covers.
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 0, 4096, 1, 4), 2);
  // Nobody covers past 8192; unknown images have no seeds at all.
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 8192, 9000, -1, 4), -1);
  EXPECT_EQ(reg.pick_seed(cands, "img-9", 0, 16, -1, 4), -1);
}

TEST(SeedRegistry, LeastLoadedWinsAndSaturatedSeedsAreSkipped) {
  SeedRegistry reg;
  reg.register_seed(1, "img-0");
  reg.register_seed(2, "img-0");
  reg.add_coverage(1, "img-0", 0, 1_MiB);
  reg.add_coverage(2, "img-0", 0, 1_MiB);
  const std::set<int> cands{1, 2};

  reg.begin_upload(1);
  reg.begin_upload(1);
  EXPECT_EQ(reg.active_uploads(1), 2);
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 0, 4096, -1, 4), 2);

  // Every covering seed at or above the cap: fall back to NFS (-1).
  reg.begin_upload(2);
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 0, 4096, -1, 1), -1);
  reg.end_upload(2);
  EXPECT_EQ(reg.pick_seed(cands, "img-0", 0, 4096, -1, 1), 2);
  reg.end_upload(1);
  reg.end_upload(1);
  EXPECT_EQ(reg.active_uploads(1), 0);
}

TEST(SeedRegistry, DeregistrationDropsCoverageAndNodeWipeCountsEntries) {
  SeedRegistry reg;
  reg.register_seed(1, "img-0");
  reg.register_seed(1, "img-1");
  reg.register_seed(2, "img-0");
  reg.add_coverage(1, "img-0", 0, 4096);
  EXPECT_EQ(reg.seed_count("img-0"), 2u);

  EXPECT_TRUE(reg.deregister(1, "img-0"));
  EXPECT_FALSE(reg.deregister(1, "img-0"));  // already gone
  EXPECT_EQ(reg.coverage(1, "img-0"), nullptr);
  EXPECT_FALSE(reg.is_seed(1, "img-0"));
  EXPECT_TRUE(reg.is_seed(2, "img-0"));

  // Crash wipe: every remaining registration of node 1 goes at once.
  reg.register_seed(1, "img-0");
  EXPECT_EQ(reg.deregister_node(1), 2u);  // img-0 + img-1
  EXPECT_EQ(reg.image_count(), 1u);       // only node 2's img-0 remains
}

// --- NIC fabric -------------------------------------------------------------

TEST(Fabric, TransferOccupiesBothLegsAndMatchesNicTiming) {
  SimEnv env;
  Fabric f{env, 2};
  const bool ok = sim::run_sync(env, f.transfer(0, 1, 1_MiB));
  EXPECT_TRUE(ok);
  // ~ bytes / 125 MB/s: the up and down legs run concurrently, so the
  // wall time is one leg, not two.
  EXPECT_NEAR(sim::to_seconds(env.now()), 1048576.0 / 125e6, 5e-3);
  EXPECT_EQ(f.bytes_transferred(), 1_MiB);
  EXPECT_EQ(f.active_uploads(0), 0);
  EXPECT_EQ(f.timeouts(), 0u);
}

TEST(Fabric, TimeoutReportsFailureButLegsKeepDraining) {
  SimEnv env;
  PeerParams p;
  p.timeout_s = 0.001;  // 8 MiB at 125 MB/s needs ~67 ms: must time out
  Fabric f{env, 2, p};
  bool ok = true;
  env.spawn([](Fabric& fb, bool& r) -> Task<void> {
    r = co_await fb.transfer(0, 1, 8_MiB);
  }(f, ok));
  env.run();  // runs until the abandoned legs drain too
  EXPECT_FALSE(ok);
  EXPECT_EQ(f.timeouts(), 1u);
  // The abandoned transfer still finished in the background — the NIC
  // was genuinely busy the whole time and the slot freed only at the end.
  EXPECT_EQ(f.bytes_transferred(), 8_MiB);
  EXPECT_EQ(f.active_uploads(0), 0);
  EXPECT_GT(sim::to_seconds(env.now()), 0.05);
}

TEST(Fabric, ZeroTimeoutDisablesTheDeadline) {
  SimEnv env;
  PeerParams p;
  p.timeout_s = 0;
  Fabric f{env, 2, p};
  const bool ok = sim::run_sync(env, f.transfer(0, 1, 64_MiB));
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.timeouts(), 0u);
}

// --- standalone (no-backing) opens and the fetch hook -----------------------

TEST(NoBackingOpen, ServesAllocatedClustersAndNeverTouchesTheBase) {
  SimEnv env;
  storage::MemMedium mem{env};
  storage::SimDirectory dir{mem};
  io::MountTable fs;
  fs.mount("d", &dir);

  const bool ok = sim::run_sync(env, [&]() -> Task<bool> {
    (void)dir.create_file("base");
    (*dir.buffer("base"))->resize(8_MiB);
    const std::vector<std::uint8_t> warm_sig(4096, 0xAB);
    const std::vector<std::uint8_t> cold_sig(4096, 0xCD);
    (*dir.buffer("base"))->write(1_MiB, warm_sig);
    (*dir.buffer("base"))->write(2_MiB, cold_sig);

    auto cr = co_await qcow2::create_cache_image(fs, "d/cache", "d/base",
                                                 /*quota=*/4_MiB);
    if (!cr.ok()) co_return false;
    // Warm 4 KiB at 1 MiB through the normal chain (CoR fill), then close.
    {
      auto dev = co_await qcow2::open_image(fs, "d/cache");
      if (!dev.ok()) co_return false;
      std::vector<std::uint8_t> buf(4096);
      if (!(co_await (*dev)->read(1_MiB, buf)).ok()) co_return false;
      if (buf != warm_sig) co_return false;
      (void)co_await (*dev)->close();
    }

    // Standalone reopen: no resolver, no backing device.
    auto be = fs.open_file("d/cache", /*writable=*/false);
    if (!be.ok()) co_return false;
    block::OpenOptions o;
    o.writable = false;
    o.no_backing = true;
    auto sd = co_await qcow2::open_any(std::move(*be), o);
    if (!sd.ok()) co_return false;
    if ((*sd)->backing() != nullptr) co_return false;

    // The warmed cluster serves its bytes; the cold one reads as zeros —
    // the base's 0xCD must NOT leak through a no-backing device.
    std::vector<std::uint8_t> got(4096);
    if (!(co_await (*sd)->read(1_MiB, got)).ok()) co_return false;
    if (got != warm_sig) co_return false;
    if (!(co_await (*sd)->read(2_MiB, got)).ok()) co_return false;
    if (got != std::vector<std::uint8_t>(4096, 0)) co_return false;

    // map_status distinguishes the two, which is how the peer path
    // decides servability.
    auto* q = dynamic_cast<qcow2::Qcow2Device*>(sd->get());
    if (q == nullptr) co_return false;
    auto warm = co_await q->map_status(1_MiB, 4096);
    auto cold = co_await q->map_status(2_MiB, 4096);
    if (!warm.ok() || !cold.ok()) co_return false;
    if (warm->kind != qcow2::Qcow2Device::MapKind::data) co_return false;
    if (cold->kind != qcow2::Qcow2Device::MapKind::unallocated) {
      co_return false;
    }
    (void)co_await (*sd)->close();
    co_return true;
  }());
  EXPECT_TRUE(ok);
}

sim::Task<Result<bool>> hook_fill_ee(std::uint64_t /*vaddr*/,
                                     std::span<std::uint8_t> dst) {
  std::fill(dst.begin(), dst.end(), std::uint8_t{0xEE});
  co_return true;
}

sim::Task<Result<bool>> hook_decline(std::uint64_t /*vaddr*/,
                                     std::span<std::uint8_t> /*dst*/) {
  co_return false;
}

TEST(FetchHook, DivertsBackingFetchesAndObserverTracksFills) {
  SimEnv env;
  storage::MemMedium mem{env};
  storage::SimDirectory dir{mem};
  io::MountTable fs;
  fs.mount("d", &dir);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> fills;
  const bool ok = sim::run_sync(env, [&]() -> Task<bool> {
    (void)dir.create_file("base");
    (*dir.buffer("base"))->resize(8_MiB);
    const std::vector<std::uint8_t> base_sig(4096, 0xAB);
    (*dir.buffer("base"))->write(1_MiB, base_sig);

    auto cr = co_await qcow2::create_cache_image(fs, "d/cache", "d/base",
                                                 /*quota=*/4_MiB);
    if (!cr.ok()) co_return false;
    auto dev = co_await qcow2::open_image(fs, "d/cache");
    if (!dev.ok()) co_return false;
    auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
    if (q == nullptr) co_return false;
    q->set_cor_fill_observer(
        [&fills](std::uint64_t lo, std::uint64_t hi) {
          fills.emplace_back(lo, hi);
        });

    // A declining hook falls through to the real backing image.
    q->set_backing_fetch_hook(&hook_decline);
    std::vector<std::uint8_t> got(4096);
    if (!(co_await (*dev)->read(1_MiB, got)).ok()) co_return false;
    if (got != base_sig) co_return false;

    // A serving hook replaces the backing fetch entirely: bytes come from
    // the hook and the base is never consulted for this range.
    q->set_backing_fetch_hook(&hook_fill_ee);
    if (!(co_await (*dev)->read(2_MiB, got)).ok()) co_return false;
    if (got != std::vector<std::uint8_t>(4096, 0xEE)) co_return false;

    // Both fills were stored locally and published to the observer; a
    // re-read is served from the cache without invoking anything.
    q->set_backing_fetch_hook({});
    if (!(co_await (*dev)->read(2_MiB, got)).ok()) co_return false;
    if (got != std::vector<std::uint8_t>(4096, 0xEE)) co_return false;
    (void)co_await (*dev)->close();
    co_return true;
  }());
  EXPECT_TRUE(ok);
  ASSERT_EQ(fills.size(), 2u);
  // Fill publications are cluster-aligned and contain the read ranges.
  EXPECT_LE(fills[0].first, 1_MiB);
  EXPECT_GE(fills[0].second, 1_MiB + 4096);
  EXPECT_LE(fills[1].first, 2_MiB);
  EXPECT_GE(fills[1].second, 2_MiB + 4096);
}

// --- seed pinning under eviction pressure (regression) ----------------------

TEST(SeedPinning, PinnedSeedIsNeverTheEvictionVictim) {
  // The pool-level contract the peer upload path depends on: while a
  // seed's cache file is pinned for an upload, an admission that needs
  // space must evict someone else (or fail), never the pinned entry.
  cache::CachePool pool{100, cache::EvictionPolicy::lru};
  EXPECT_TRUE(pool.admit("img-0", 50).admitted);
  EXPECT_TRUE(pool.admit("img-1", 50).admitted);
  pool.pin("img-0");  // upload in flight; img-0 is also the LRU victim
  const auto ar = pool.admit("img-2", 50);
  EXPECT_TRUE(ar.admitted);
  ASSERT_EQ(ar.evicted.size(), 1u);
  EXPECT_EQ(ar.evicted[0], "img-1");
  EXPECT_TRUE(pool.contains("img-0"));
  pool.unpin("img-0");
}

// --- cloud engine integration -----------------------------------------------

cloud::CloudConfig peer_cloud_config(std::uint64_t seed, bool peer_on) {
  cloud::CloudConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 360.0;
  cfg.workload.num_vmis = 12;
  cfg.workload.zipf_exponent = 1.1;
  cfg.workload.mean_interarrival_s = 7.2;  // ~500 arrivals/hour
  cfg.peer_transfer = peer_on;
  return cfg;
}

TEST(PeerCloud, PeerTierCutsStorageTrafficWithoutChangingOutcomes) {
  const cloud::CloudResult off = run_cloud(peer_cloud_config(9, false));
  const cloud::CloudResult on = run_cloud(peer_cloud_config(9, true));
  // Same workload, same admission outcomes; only the fill paths differ.
  EXPECT_EQ(on.arrivals, off.arrivals);
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_EQ(on.aborted, off.aborted);
  EXPECT_EQ(on.leaked_slots, 0);
  EXPECT_GT(on.peer_seed_hits, 0u);
  EXPECT_GT(on.peer_bytes_served, 0u);
  EXPECT_LT(on.storage_payload_bytes, off.storage_payload_bytes);
  // CloudResult mirrors agree with the registry counters.
  EXPECT_EQ(on.metrics.counter_total("peer.seed_hits"), on.peer_seed_hits);
  EXPECT_EQ(on.metrics.counter_total("peer.fallback_fills"),
            on.peer_fallback_fills);
  // Off-run snapshots carry no peer.* series at all (golden-pin safety).
  EXPECT_EQ(off.metrics.find("peer.seed_hits"), nullptr);
  EXPECT_EQ(off.metrics.find("peer.fallback_fills"), nullptr);
  EXPECT_EQ(off.peer_seed_hits, 0u);
  EXPECT_EQ(off.peer_fallback_fills, 0u);
}

TEST(PeerCloud, PeerOnRunsAreByteIdentical) {
  cloud::CloudConfig cfg = peer_cloud_config(11, true);
  cfg.horizon_s = 240.0;  // two full runs; keep the suite fast
  const cloud::CloudResult a = run_cloud(cfg);
  const cloud::CloudResult b = run_cloud(cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.peer_seed_hits, b.peer_seed_hits);
  EXPECT_EQ(a.metrics.to_text(), b.metrics.to_text());
}

TEST(PeerCloud, EvictionPressureCannotYankSeedFilesMidUpload) {
  // Tight per-node cache budget: evictions race peer uploads constantly.
  // The run completing with clean accounting is the regression signal —
  // an unpinned seed victim would have its file deleted under an open
  // backend, which the storage layer treats as a hard fault.
  cloud::CloudConfig cfg = peer_cloud_config(13, true);
  cfg.cluster.node_cache_capacity = 96 * MiB;  // 2 quotas per node
  const cloud::CloudResult r = run_cloud(cfg);
  EXPECT_GT(r.cache_evictions, 0u);
  EXPECT_GT(r.peer_seed_hits, 0u);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.completed + r.aborted + r.rejected, r.arrivals);
}

TEST(PeerCloud, CrashesDeregisterSeedsAndFillsFallBackToNfs) {
  cloud::CloudConfig cfg = peer_cloud_config(17, true);
  Rng plan_rng(cfg.seed ^ 0xFA11ull);
  cfg.failures = cloud::plan_failures(3, 0, cfg.cluster.compute_nodes,
                                      cfg.horizon_s, plan_rng);
  const cloud::CloudResult r = run_cloud(cfg);
  EXPECT_GT(r.node_crashes, 0);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.completed + r.aborted + r.rejected, r.arrivals);
  // Deregistrations happened (eviction or crash); the run still served
  // peer traffic around them.
  EXPECT_GT(r.metrics.counter_total("peer.deregistrations"), 0u);
  EXPECT_GT(r.peer_seed_hits, 0u);
}

}  // namespace
}  // namespace vmic::peer
