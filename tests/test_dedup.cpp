// Tests for the content-addressed block store and deduplicated files
// (§7.3 content-based block caching / §8 future work).
#include <gtest/gtest.h>

#include <vector>

#include "dedup/index.hpp"
#include "dedup/store.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::dedup {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

TEST(BlockStore, IdenticalBlocksStoredOnce) {
  BlockStore store{4096};
  const auto a = pattern_bytes(1, 4096);
  const auto id1 = store.put(a);
  const auto id2 = store.put(a);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(store.unique_blocks(), 1u);
  EXPECT_EQ(store.stored_bytes(), 4096u);
  EXPECT_EQ(store.logical_bytes(), 8192u);
  EXPECT_DOUBLE_EQ(store.dedup_ratio(), 2.0);
  EXPECT_EQ(store.ref_count(id1), 2u);
}

TEST(BlockStore, DistinctBlocksStoredSeparately) {
  BlockStore store{4096};
  const auto id1 = store.put(pattern_bytes(1, 4096));
  const auto id2 = store.put(pattern_bytes(2, 4096));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(store.unique_blocks(), 2u);
}

TEST(BlockStore, GetReturnsExactContent) {
  BlockStore store{4096};
  const auto a = pattern_bytes(7, 4096);
  const auto id = store.put(a);
  const auto back = store.get(id);
  ASSERT_EQ(back.size(), a.size());
  EXPECT_EQ(0, std::memcmp(back.data(), a.data(), a.size()));
}

TEST(BlockStore, ReleaseFreesAtZero) {
  BlockStore store{4096};
  const auto a = pattern_bytes(1, 4096);
  const auto id = store.put(a);
  store.put(a);  // refs = 2
  store.release(id);
  EXPECT_EQ(store.ref_count(id), 1u);
  EXPECT_EQ(store.stored_bytes(), 4096u);
  store.release(id);
  EXPECT_EQ(store.ref_count(id), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.unique_blocks(), 0u);
  // Re-putting after free works and gets a fresh id.
  const auto id2 = store.put(a);
  EXPECT_EQ(store.ref_count(id2), 1u);
}

TEST(BlockStore, ShortTailBlocksCanonicalized) {
  BlockStore store{4096};
  const auto tail = pattern_bytes(3, 100);
  const auto id = store.put(tail);
  // Tails are canonicalized: stored zero-padded to the block size, so a
  // partial tail deduplicates against its zero-padded full-block twin
  // (the cache path hashes whole zero-padded clusters).
  const auto back = store.get(id);
  ASSERT_EQ(back.size(), 4096u);
  EXPECT_EQ(0, std::memcmp(back.data(), tail.data(), tail.size()));
  for (std::size_t i = tail.size(); i < back.size(); ++i) {
    ASSERT_EQ(back[i], 0u) << "pad byte " << i;
  }
  std::vector<std::uint8_t> padded(4096, 0);
  std::memcpy(padded.data(), tail.data(), tail.size());
  EXPECT_EQ(store.put(padded), id);
  EXPECT_EQ(store.unique_blocks(), 1u);
  EXPECT_EQ(store.stored_bytes(), 4096u);
  EXPECT_EQ(store.logical_bytes(), 100u + 4096u);
}

// Property: dedup must be byte-exact even under (synthetic) digest
// collisions — content decides, not the hash.
TEST(BlockStore, ManyRandomBlocksRoundTrip) {
  BlockStore store{512};
  Rng rng{99};
  std::vector<std::pair<BlockStore::BlockId, std::vector<std::uint8_t>>> all;
  for (int i = 0; i < 500; ++i) {
    auto data = pattern_bytes(rng.below(100), 512);  // many duplicates
    all.emplace_back(store.put(data), std::move(data));
  }
  for (const auto& [id, data] : all) {
    const auto back = store.get(id);
    ASSERT_EQ(0, std::memcmp(back.data(), data.data(), data.size()));
  }
  EXPECT_LE(store.unique_blocks(), 100u);
  EXPECT_GE(store.dedup_ratio(), 4.9);
}

// ---------------------------------------------------------------------------
// DedupFile
// ---------------------------------------------------------------------------

TEST(DedupFile, AppendReadRoundTrip) {
  BlockStore store{4096};
  DedupFile f{store};
  const auto data = pattern_bytes(5, 100000);
  // Append in awkward chunk sizes.
  std::size_t off = 0;
  Rng rng{1};
  while (off < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(9000), data.size() - off);
    f.append({data.data() + off, n});
    off += n;
  }
  EXPECT_EQ(f.size(), data.size());
  std::vector<std::uint8_t> out(33333);
  f.read(12345, out);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data() + 12345, out.size()));
}

TEST(DedupFile, TwoIdenticalFilesShareBlocks) {
  BlockStore store{4096};
  const auto data = pattern_bytes(5, 1 * MiB);
  DedupFile a{store}, b{store};
  a.append(data);
  b.append(data);
  EXPECT_EQ(store.stored_bytes(), 1 * MiB);
  EXPECT_EQ(store.logical_bytes(), 2 * MiB);
  EXPECT_EQ(a.exclusive_bytes(), 0u);  // everything shared
  b.clear();
  EXPECT_EQ(a.exclusive_bytes(), 1 * MiB);  // now sole owner
  EXPECT_EQ(store.stored_bytes(), 1 * MiB);
}

TEST(DedupFile, ClearReleasesStorage) {
  BlockStore store{4096};
  DedupFile f{store};
  f.append(pattern_bytes(5, 1 * MiB));
  f.clear();
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(f.size(), 0u);
}

TEST(DedupFile, PartialOverlapAccounting) {
  BlockStore store{4096};
  const auto shared = pattern_bytes(1, 512 * KiB);
  const auto only_a = pattern_bytes(2, 512 * KiB);
  const auto only_b = pattern_bytes(3, 512 * KiB);
  DedupFile a{store}, b{store};
  a.append(shared);
  a.append(only_a);
  b.append(shared);
  b.append(only_b);
  // 3 distinct halves stored; 4 halves logical.
  EXPECT_EQ(store.stored_bytes(), 3 * 512 * KiB);
  EXPECT_EQ(store.logical_bytes(), 4 * 512 * KiB);
  EXPECT_EQ(a.exclusive_bytes(), 512 * KiB);
  EXPECT_EQ(b.exclusive_bytes(), 512 * KiB);
}

// ---------------------------------------------------------------------------
// FingerprintIndex
// ---------------------------------------------------------------------------

TEST(FingerprintIndex, FindReturnsSmallestLocation) {
  FingerprintIndex idx;
  idx.add(42, "vmi2.qcow2", 7);
  idx.add(42, "vmi1.qcow2", 9);
  idx.add(42, "vmi1.qcow2", 3);
  const auto* loc = idx.find(42);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->image, "vmi1.qcow2");
  EXPECT_EQ(loc->cluster, 3u);
  EXPECT_EQ(idx.locations(), 3u);
  EXPECT_EQ(idx.unique_fingerprints(), 1u);
  EXPECT_EQ(idx.find(43), nullptr);
}

TEST(FingerprintIndex, AddIsIdempotent) {
  FingerprintIndex idx;
  idx.add(1, "a", 0);
  idx.add(1, "a", 0);
  EXPECT_EQ(idx.locations(), 1u);
  idx.remove(1, "a", 0);
  EXPECT_EQ(idx.locations(), 0u);
  EXPECT_EQ(idx.find(1), nullptr);
  EXPECT_FALSE(idx.has_image("a"));
}

TEST(FingerprintIndex, RemoveImageDropsEveryLocation) {
  FingerprintIndex idx;
  idx.add(1, "a", 0);
  idx.add(1, "b", 0);
  idx.add(2, "a", 5);
  idx.add(3, "a", 6);
  idx.remove_image("a");
  EXPECT_FALSE(idx.has_image("a"));
  EXPECT_TRUE(idx.has_image("b"));
  EXPECT_EQ(idx.locations(), 1u);
  ASSERT_NE(idx.find(1), nullptr);
  EXPECT_EQ(idx.find(1)->image, "b");
  EXPECT_EQ(idx.find(2), nullptr);
  EXPECT_EQ(idx.find(3), nullptr);
  // Removing an absent image is a no-op.
  idx.remove_image("a");
  EXPECT_EQ(idx.locations(), 1u);
}

TEST(FingerprintIndex, RemoveSingleLocationKeepsOthers) {
  FingerprintIndex idx;
  idx.add(9, "a", 1);
  idx.add(9, "a", 2);
  idx.remove(9, "a", 1);
  ASSERT_NE(idx.find(9), nullptr);
  EXPECT_EQ(idx.find(9)->cluster, 2u);
  EXPECT_TRUE(idx.has_image("a"));
  // Unknown removals are no-ops.
  idx.remove(9, "zzz", 0);
  idx.remove(12345, "a", 2);
  EXPECT_EQ(idx.locations(), 1u);
}

}  // namespace
}  // namespace vmic::dedup
