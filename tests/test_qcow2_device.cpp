// Qcow2Device tests: create/open/read/write/CoW, backing chains,
// persistence, refcount consistency — parameterized across cluster sizes
// (512 B ... 64 KiB), including the paper's two interesting points.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "block/raw.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using block::DevicePtr;
using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

/// Fixture parameterized on cluster_bits.
class Qcow2DeviceTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  std::uint32_t bits() const { return GetParam(); }
  std::uint64_t cs() const { return 1ull << bits(); }

  MemImageStore store_;

  void create_image(const std::string& name, std::uint64_t size,
                    const std::string& backing = "",
                    std::uint64_t quota = 0) {
    auto be = store_.create_file(name);
    ASSERT_TRUE(be.ok());
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = size;
    opt.cluster_bits = bits();
    opt.backing_file = backing;
    opt.cache_quota = quota;
    auto r = sync_wait(Qcow2Device::create(**be, opt));
    ASSERT_TRUE(r.ok()) << to_string(r.error());
  }

  DevicePtr open(const std::string& name, bool writable = true) {
    auto dev = sync_wait(open_image(store_, name, writable));
    EXPECT_TRUE(dev.ok()) << to_string(dev.error());
    return dev.ok() ? std::move(*dev) : nullptr;
  }

  /// Create a raw base image filled with a deterministic pattern.
  void create_raw_base(const std::string& name, std::uint64_t size,
                       std::uint64_t seed = 1) {
    auto be = store_.create_file(name);
    ASSERT_TRUE(be.ok());
    auto data = pattern_bytes(seed, size);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }

  std::uint64_t file_digest(const std::string& name) {
    auto buf = store_.buffer(name);
    EXPECT_TRUE(buf.ok());
    std::vector<std::uint8_t> all((*buf)->size());
    (*buf)->read(0, all);
    return fnv1a(all);
  }
};

TEST_P(Qcow2DeviceTest, CreateAndOpen) {
  create_image("a.qcow2", 100_MiB);
  auto dev = open("a.qcow2");
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->size(), 100_MiB);
  EXPECT_EQ(dev->format_name(), "qcow2");
  EXPECT_FALSE(dev->is_cache_image());
  EXPECT_FALSE(dev->read_only());
  EXPECT_EQ(dev->backing(), nullptr);
}

TEST_P(Qcow2DeviceTest, FreshImageReadsZero) {
  create_image("a.qcow2", 10_MiB);
  auto dev = open("a.qcow2");
  std::vector<std::uint8_t> buf(123456, 0xFF);
  ASSERT_TRUE(sync_wait(dev->read(777, buf)).ok());
  EXPECT_TRUE(is_all_zero(buf));
}

TEST_P(Qcow2DeviceTest, WriteReadRoundTrip) {
  create_image("a.qcow2", 10_MiB);
  auto dev = open("a.qcow2");
  const auto data = pattern_bytes(7, 300000);
  // Deliberately unaligned offset.
  ASSERT_TRUE(sync_wait(dev->write(12345, data)).ok());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait(dev->read(12345, out)).ok());
  EXPECT_EQ(data, out);
  // Around the write, still zeros.
  std::vector<std::uint8_t> edge(12345);
  ASSERT_TRUE(sync_wait(dev->read(0, edge)).ok());
  EXPECT_TRUE(is_all_zero(edge));
}

TEST_P(Qcow2DeviceTest, OverwriteAllocatedCluster) {
  create_image("a.qcow2", 10_MiB);
  auto dev = open("a.qcow2");
  const auto a = pattern_bytes(1, 100000);
  const auto b = pattern_bytes(2, 100000);
  ASSERT_TRUE(sync_wait(dev->write(0, a)).ok());
  ASSERT_TRUE(sync_wait(dev->write(0, b)).ok());
  std::vector<std::uint8_t> out(b.size());
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_EQ(b, out);
}

TEST_P(Qcow2DeviceTest, PersistsAcrossReopen) {
  create_image("a.qcow2", 10_MiB);
  const auto data = pattern_bytes(3, 200000);
  {
    auto dev = open("a.qcow2");
    ASSERT_TRUE(sync_wait(dev->write(1_MiB + 17, data)).ok());
    ASSERT_TRUE(sync_wait(dev->close()).ok());
  }
  auto dev = open("a.qcow2", /*writable=*/false);
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait(dev->read(1_MiB + 17, out)).ok());
  EXPECT_EQ(data, out);
}

TEST_P(Qcow2DeviceTest, OutOfRangeRejected) {
  create_image("a.qcow2", 1_MiB);
  auto dev = open("a.qcow2");
  std::vector<std::uint8_t> buf(100);
  EXPECT_EQ(sync_wait(dev->read(1_MiB - 50, buf)).error(),
            Errc::out_of_range);
  EXPECT_EQ(sync_wait(dev->write(1_MiB, buf)).error(), Errc::out_of_range);
  // Boundary-exact access is fine.
  EXPECT_TRUE(sync_wait(dev->read(1_MiB - 100, buf)).ok());
}

TEST_P(Qcow2DeviceTest, ReadOnlyOpenRejectsWrites) {
  create_image("a.qcow2", 1_MiB);
  auto dev = open("a.qcow2", /*writable=*/false);
  std::vector<std::uint8_t> buf(100, 1);
  EXPECT_TRUE(dev->read_only());
  EXPECT_EQ(sync_wait(dev->write(0, buf)).error(), Errc::read_only);
}

TEST_P(Qcow2DeviceTest, UnalignedVirtualSizeTail) {
  // Virtual size deliberately not cluster-aligned.
  const std::uint64_t size = 4_MiB + 1234;
  create_image("a.qcow2", size);
  auto dev = open("a.qcow2");
  const auto data = pattern_bytes(5, 1000);
  ASSERT_TRUE(sync_wait(dev->write(size - 1000, data)).ok());
  std::vector<std::uint8_t> out(1000);
  ASSERT_TRUE(sync_wait(dev->read(size - 1000, out)).ok());
  EXPECT_EQ(data, out);
  auto* q = dynamic_cast<Qcow2Device*>(dev.get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

// ---------------------------------------------------------------------------
// Backing chains (plain CoW, §2)
// ---------------------------------------------------------------------------

TEST_P(Qcow2DeviceTest, CowReadsThroughToBase) {
  create_raw_base("base.img", 4_MiB, /*seed=*/11);
  create_image("cow.qcow2", 4_MiB, "base.img");
  auto dev = open("cow.qcow2");
  ASSERT_NE(dev->backing(), nullptr);
  EXPECT_EQ(dev->backing()->format_name(), "raw");

  const auto expect = pattern_bytes(11, 4_MiB);
  std::vector<std::uint8_t> out(100000);
  ASSERT_TRUE(sync_wait(dev->read(1_MiB + 3, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 1_MiB + 3, out.size()));
}

TEST_P(Qcow2DeviceTest, CowWritesDoNotTouchBase) {
  create_raw_base("base.img", 4_MiB, 11);
  const auto base_digest_before = file_digest("base.img");
  create_image("cow.qcow2", 4_MiB, "base.img");
  auto dev = open("cow.qcow2");

  const auto data = pattern_bytes(12, 500000);
  ASSERT_TRUE(sync_wait(dev->write(100000, data)).ok());
  ASSERT_TRUE(sync_wait(dev->close()).ok());
  EXPECT_EQ(file_digest("base.img"), base_digest_before);
}

TEST_P(Qcow2DeviceTest, PartialClusterWriteFillsFromBase) {
  // A sub-cluster write to an unallocated cluster must merge with base
  // content (copy-on-write fill).
  create_raw_base("base.img", 4_MiB, 11);
  create_image("cow.qcow2", 4_MiB, "base.img");
  auto dev = open("cow.qcow2");

  auto expect = pattern_bytes(11, 4_MiB);
  const std::uint64_t off = 2 * cs() + 100;  // inside cluster 2
  const auto data = pattern_bytes(13, 50);
  ASSERT_TRUE(sync_wait(dev->write(off, data)).ok());
  std::memcpy(expect.data() + off, data.data(), data.size());

  // The whole surrounding cluster must now read as base-with-patch.
  std::vector<std::uint8_t> out(3 * cs());
  ASSERT_TRUE(sync_wait(dev->read(cs(), out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + cs(), out.size()));
}

TEST_P(Qcow2DeviceTest, BaseIsDemotedToReadOnly) {
  // §4.3: backing images are opened RW, then demoted to RO when they turn
  // out not to be cache images.
  create_raw_base("base.img", 1_MiB, 11);
  create_image("cow.qcow2", 1_MiB, "base.img");
  auto dev = open("cow.qcow2");
  ASSERT_NE(dev->backing(), nullptr);
  EXPECT_TRUE(dev->backing()->read_only());
  std::vector<std::uint8_t> buf(10, 1);
  EXPECT_EQ(sync_wait(dev->backing()->write(0, buf)).error(),
            Errc::read_only);
}

TEST_P(Qcow2DeviceTest, QcowOverQcowChain) {
  // qcow2 base <- qcow2 overlay (not a cache): two-level chain.
  create_image("mid.qcow2", 2_MiB);
  {
    auto mid = open("mid.qcow2");
    const auto data = pattern_bytes(21, 1_MiB);
    ASSERT_TRUE(sync_wait(mid->write(0, data)).ok());
    ASSERT_TRUE(sync_wait(mid->close()).ok());
  }
  create_image("top.qcow2", 2_MiB, "mid.qcow2");
  auto top = open("top.qcow2");
  const auto expect = pattern_bytes(21, 1_MiB);
  std::vector<std::uint8_t> out(100000);
  ASSERT_TRUE(sync_wait(top->read(500000, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 500000, out.size()));
}

TEST_P(Qcow2DeviceTest, MissingBackingFails) {
  create_image("cow.qcow2", 1_MiB, "nonexistent.img");
  auto dev = sync_wait(open_image(store_, "cow.qcow2", true));
  EXPECT_FALSE(dev.ok());
  EXPECT_EQ(dev.error(), Errc::not_found);
}

// ---------------------------------------------------------------------------
// Consistency / refcounts
// ---------------------------------------------------------------------------

TEST_P(Qcow2DeviceTest, CheckCleanAfterRandomWrites) {
  create_image("a.qcow2", 16_MiB);
  auto dev = open("a.qcow2");
  Rng rng{42};
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t off = rng.below(16_MiB - 64_KiB);
    const auto data = pattern_bytes(i, 1 + rng.below(64_KiB));
    ASSERT_TRUE(sync_wait(dev->write(off, data)).ok());
  }
  auto* q = dynamic_cast<Qcow2Device*>(dev.get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
  EXPECT_GT(chk->data_clusters, 0u);
}

TEST_P(Qcow2DeviceTest, RefcountTableGrowth) {
  // Force the refcount table to be undersized so allocations must grow it.
  auto be = store_.create_file("tiny-rt.qcow2");
  ASSERT_TRUE(be.ok());
  Qcow2Device::CreateOptions opt;
  opt.virtual_size = 64_MiB;
  opt.cluster_bits = bits();
  opt.expected_file_size = 1;  // comically small => 1 refcount-table cluster
  ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());

  auto dev = open("tiny-rt.qcow2");
  // Write enough data to overflow the initial refcount coverage
  // (clusters_per_rt_cluster * cs bytes for one table cluster).
  const Layout ly{bits()};
  const std::uint64_t coverage = ly.clusters_per_rt_cluster() * cs();
  const std::uint64_t to_write = std::min<std::uint64_t>(
      48_MiB, coverage + 8 * cs());
  const auto chunk = pattern_bytes(9, 1_MiB);
  for (std::uint64_t off = 0; off + chunk.size() <= to_write;
       off += chunk.size()) {
    ASSERT_TRUE(sync_wait(dev->write(off, chunk)).ok()) << off;
  }
  auto* q = dynamic_cast<Qcow2Device*>(dev.get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
  // And the data is still intact after the table moved.
  std::vector<std::uint8_t> out(chunk.size());
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_EQ(chunk, out);
}

// Property test: random interleaved reads/writes against a flat
// reference model must agree at every step.
TEST_P(Qcow2DeviceTest, PropertyMatchesReferenceModel) {
  const std::uint64_t size = 8_MiB;
  create_raw_base("base.img", size, 31);
  create_image("cow.qcow2", size, "base.img");
  auto dev = open("cow.qcow2");

  auto model = pattern_bytes(31, size);
  Rng rng{99};
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t len = 1 + rng.below(150000);
    const std::uint64_t off = rng.below(size - len);
    if (rng.chance(0.5)) {
      const auto data = pattern_bytes(1000 + i, len);
      ASSERT_TRUE(sync_wait(dev->write(off, data)).ok());
      std::memcpy(model.data() + off, data.data(), len);
    } else {
      std::vector<std::uint8_t> out(len);
      ASSERT_TRUE(sync_wait(dev->read(off, out)).ok());
      ASSERT_EQ(0, std::memcmp(out.data(), model.data() + off, len))
          << "step " << i << " off=" << off << " len=" << len;
    }
  }
  auto* q = dynamic_cast<Qcow2Device*>(dev.get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean());
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, Qcow2DeviceTest,
                         ::testing::Values(9u, 12u, 16u),
                         [](const auto& info) {
                           return "cb" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Probing & helpers (not cluster-size dependent)
// ---------------------------------------------------------------------------

TEST(Qcow2OpenAny, ProbesRawVsQcow2) {
  MemImageStore store;
  {
    auto be = store.create_file("raw.img");
    ASSERT_TRUE(be.ok());
    auto data = pattern_bytes(1, 1_MiB);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  {
    auto be = store.create_file("img.qcow2");
    ASSERT_TRUE(be.ok());
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  }
  auto raw = sync_wait(open_image(store, "raw.img"));
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)->format_name(), "raw");
  auto q = sync_wait(open_image(store, "img.qcow2"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->format_name(), "qcow2");
}

TEST(Qcow2Chain, CreateCowInheritsBackingSize) {
  MemImageStore store;
  {
    auto be = store.create_file("base.img");
    ASSERT_TRUE(be.ok());
    auto data = pattern_bytes(1, 3_MiB);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  ASSERT_TRUE(sync_wait(create_cow_image(store, "vm.cow", "base.img")).ok());
  auto dev = sync_wait(open_image(store, "vm.cow"));
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->size(), 3_MiB);
  EXPECT_FALSE((*dev)->is_cache_image());
}

TEST(Qcow2Chain, BackingCycleRejected) {
  // a <- b <- a: resolving the chain must fail instead of recursing
  // forever.
  MemImageStore store;
  auto make = [&](const std::string& name, const std::string& backing) {
    auto be = store.create_file(name);
    ASSERT_TRUE(be.ok());
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    opt.backing_file = backing;
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  };
  make("a.qcow2", "b.qcow2");
  make("b.qcow2", "a.qcow2");
  auto dev = sync_wait(open_image(store, "a.qcow2"));
  EXPECT_FALSE(dev.ok());
}

TEST(Qcow2Chain, DeepButAcyclicChainOpens) {
  MemImageStore store;
  {
    auto be = store.create_file("l0");
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  }
  for (int i = 1; i <= 5; ++i) {
    auto be = store.create_file("l" + std::to_string(i));
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    opt.backing_file = "l" + std::to_string(i - 1);
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  }
  auto dev = sync_wait(open_image(store, "l5"));
  ASSERT_TRUE(dev.ok());
  int depth = 0;
  for (const block::BlockDevice* d = dev->get(); d != nullptr;
       d = d->backing()) {
    ++depth;
  }
  EXPECT_EQ(depth, 6);
}

TEST(Qcow2Create, RejectsInvalidOptions) {
  MemImageStore store;
  auto be = store.create_file("x");
  ASSERT_TRUE(be.ok());
  Qcow2Device::CreateOptions opt;
  opt.virtual_size = 0;
  EXPECT_EQ(sync_wait(Qcow2Device::create(**be, opt)).error(),
            Errc::invalid_argument);
  opt.virtual_size = 1_MiB;
  opt.cluster_bits = 8;
  EXPECT_EQ(sync_wait(Qcow2Device::create(**be, opt)).error(),
            Errc::invalid_argument);
  opt.cluster_bits = 9;
  opt.cache_quota = 512;  // cannot even hold the metadata skeleton
  EXPECT_EQ(sync_wait(Qcow2Device::create(**be, opt)).error(),
            Errc::invalid_argument);
}

}  // namespace
}  // namespace vmic::qcow2
