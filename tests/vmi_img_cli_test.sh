#!/bin/sh
# End-to-end exercise of the vmi-img CLI against real files: the paper's
# §4.4 chaining workflow plus the extended subcommands.
set -e

VMI_IMG="$1"
[ -x "$VMI_IMG" ] || { echo "usage: $0 <path-to-vmi-img>"; exit 2; }

DIR=$(mktemp -d /tmp/vmi-img-cli-XXXXXX)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"

echo "--- create chain (base <- cache <- cow)"
"$VMI_IMG" create base.img 256M -f raw
"$VMI_IMG" create centos.cache 256M -b base.img -q 32M -c 512
"$VMI_IMG" create vm0.cow 256M -b centos.cache

echo "--- info shows the cache extension"
"$VMI_IMG" info centos.cache | grep -q "VMI cache: yes"
"$VMI_IMG" info centos.cache | grep -q "cache quota: 32.0 MiB"

echo "--- chain shows the permission dance"
CHAIN=$("$VMI_IMG" chain vm0.cow)
echo "$CHAIN" | grep -q "VMI cache, rw"   # cache keeps write permission
echo "$CHAIN" | grep -q "raw, ro"         # base demoted read-only

echo "--- check is clean on fresh images"
"$VMI_IMG" check centos.cache
"$VMI_IMG" check vm0.cow

echo "--- map on an empty overlay"
"$VMI_IMG" map vm0.cow | grep -q "0 B data"

echo "--- resize grows the virtual disk"
"$VMI_IMG" resize vm0.cow 512M
"$VMI_IMG" info vm0.cow | grep -q "512.0 MiB"

echo "--- invalid invocations fail"
if "$VMI_IMG" create bad.qcow2 0 2>/dev/null; then exit 1; fi
if "$VMI_IMG" info nonexistent.qcow2 2>/dev/null; then exit 1; fi
if "$VMI_IMG" commit base.img 2>/dev/null; then exit 1; fi

echo "--- commit a plain overlay"
"$VMI_IMG" create mid.qcow2 64M
"$VMI_IMG" create top.qcow2 64M -b mid.qcow2
"$VMI_IMG" commit top.qcow2

# A fresh 64M image with 64 KiB clusters lays out: cluster 0 header,
# cluster 1 refcount table (0x10000), cluster 2 refcount block (0x20000),
# cluster 3 L1 table (0x30000). The pokes below rely on that layout.
echo "--- corruption: out-of-file L1 pointer -> check exits 2"
"$VMI_IMG" create scratch.qcow2 64M
cp scratch.qcow2 corrupt.qcow2
printf '\200\000\001\000\000\000\000\000' \
  | dd of=corrupt.qcow2 bs=1 seek=196608 conv=notrunc 2>/dev/null
RC=0; "$VMI_IMG" check corrupt.qcow2 >/dev/null || RC=$?
[ "$RC" -eq 2 ] || { echo "expected exit 2, got $RC"; exit 1; }
"$VMI_IMG" check corrupt.qcow2 --json | grep -q '"corruptions": 1'

echo "--- check --repair clears the bad pointer and exits 0"
"$VMI_IMG" check corrupt.qcow2 --repair | grep -q "1 entries cleared"
"$VMI_IMG" check corrupt.qcow2

echo "--- leak: stray refcount on an unreferenced cluster -> exits 3"
cp scratch.qcow2 leak.qcow2
dd if=/dev/zero of=leak.qcow2 bs=1 seek=327679 count=1 conv=notrunc \
  2>/dev/null
printf '\000\001' | dd of=leak.qcow2 bs=1 seek=131080 conv=notrunc \
  2>/dev/null
RC=0; "$VMI_IMG" check leak.qcow2 >/dev/null || RC=$?
[ "$RC" -eq 3 ] || { echo "expected exit 3, got $RC"; exit 1; }
"$VMI_IMG" check leak.qcow2 --repair | grep -q "1 leaks dropped"
"$VMI_IMG" check leak.qcow2

echo "--- dirty bit reported by check --json, cleared by --repair"
cp scratch.qcow2 dirty.qcow2
printf '\001' | dd of=dirty.qcow2 bs=1 seek=79 conv=notrunc 2>/dev/null
"$VMI_IMG" check dirty.qcow2 --json | grep -q '"dirty": 1'
"$VMI_IMG" check dirty.qcow2 --repair --json | grep -q '"repaired": 1'
"$VMI_IMG" check dirty.qcow2 --json | grep -q '"dirty": 0'

echo "--- journaled image: create, info, dirty repair via replay"
"$VMI_IMG" create journ.qcow2 64M -j 64
"$VMI_IMG" info journ.qcow2 | grep -q "refcount journal: 64 sectors"
"$VMI_IMG" check journ.qcow2 --json | grep -q '"journal_sectors": 64'
# Byte 79 holds dirty (0x01) AND the journal feature bit (0x02).
printf '\003' | dd of=journ.qcow2 bs=1 seek=79 conv=notrunc 2>/dev/null
"$VMI_IMG" check journ.qcow2 --repair | grep -q "journal replay"
"$VMI_IMG" check journ.qcow2 --json | grep -q '"dirty": 0'
# Re-dirty: repair only replays on a dirty image.
printf '\003' | dd of=journ.qcow2 bs=1 seek=79 conv=notrunc 2>/dev/null
"$VMI_IMG" check journ.qcow2 --repair --json \
  | grep -q '"journal_replayed": 1'
"$VMI_IMG" check journ.qcow2 --json | grep -q '"dirty": 0'

echo "--- corrupt journal header falls back to full rebuild"
cp journ.qcow2 jfall.qcow2
JOFF=$("$VMI_IMG" info jfall.qcow2 >/dev/null 2>&1; python3 - <<'PYEOF'
import struct
# The journal header extension (magic 0x764A524E) lives in the header
# extension area after the 104-byte v3 header.
data = open('jfall.qcow2', 'rb').read(4096)
pos = 104
while pos + 8 <= len(data):
    etype, elen = struct.unpack('>II', data[pos:pos + 8])
    if etype == 0x764A524E:
        print(struct.unpack('>Q', data[pos + 8:pos + 16])[0])
        break
    if etype == 0:
        break
    pos += 8 + ((elen + 7) // 8) * 8
PYEOF
)
[ -n "$JOFF" ] || { echo "journal extension not found"; exit 1; }
dd if=/dev/zero of=jfall.qcow2 bs=1 seek="$JOFF" count=512 conv=notrunc \
  2>/dev/null
printf '\003' | dd of=jfall.qcow2 bs=1 seek=79 conv=notrunc 2>/dev/null
"$VMI_IMG" check jfall.qcow2 --repair | grep -q "fell back to full rebuild"
"$VMI_IMG" check jfall.qcow2 --json | grep -q '"dirty": 0'

echo "--- manifest: empty node reports no valid generation, exits 1"
RC=0; "$VMI_IMG" manifest node0 >/dev/null || RC=$?
[ "$RC" -eq 1 ] || { echo "expected exit 1, got $RC"; exit 1; }

echo "--- manifest --init publishes generation 1 into slot a"
"$VMI_IMG" manifest node0 --init | grep -q "generation: 1"
[ -f node0.a ] || { echo "slot a not written"; exit 1; }
"$VMI_IMG" manifest node0 | grep -q "slot a:     generation 1"
"$VMI_IMG" manifest node0 | grep -q "slot b:     missing"

echo "--- manifest --add alternates slots and bumps the generation"
"$VMI_IMG" manifest node0 --add img-0 cache-img-0.qcow2 32M \
  | grep -q "generation: 2"
[ -f node0.b ] || { echo "slot b not written"; exit 1; }
"$VMI_IMG" manifest node0 --add img-1 cache-img-1.qcow2 16M \
  | grep -q "generation: 3"
"$VMI_IMG" manifest node0 | grep -q "img-0"
"$VMI_IMG" manifest node0 | grep -q "cache-img-1.qcow2"
"$VMI_IMG" manifest node0 --json | grep -q '"valid": true'
"$VMI_IMG" manifest node0 --json | grep -q '"generation": 3'

echo "--- manifest: a torn newest slot falls back to the older generation"
# Generation 3 lives in slot a (1->a, 2->b, 3->a); flip one payload byte.
printf '\377' | dd of=node0.a bs=1 seek=60 conv=notrunc 2>/dev/null
"$VMI_IMG" manifest node0 | grep -q "generation: 2"
"$VMI_IMG" manifest node0 | grep -q "slot a:     corrupt"

echo "--- manifest: both slots torn means no valid generation"
printf '\377' | dd of=node0.b bs=1 seek=60 conv=notrunc 2>/dev/null
RC=0; "$VMI_IMG" manifest node0 >/dev/null || RC=$?
[ "$RC" -eq 1 ] || { echo "expected exit 1, got $RC"; exit 1; }
"$VMI_IMG" manifest node0 --json | grep -q '"valid": false'

echo "ALL CLI CHECKS PASSED"
