#!/bin/sh
# End-to-end exercise of the vmi-img CLI against real files: the paper's
# §4.4 chaining workflow plus the extended subcommands.
set -e

VMI_IMG="$1"
[ -x "$VMI_IMG" ] || { echo "usage: $0 <path-to-vmi-img>"; exit 2; }

DIR=$(mktemp -d /tmp/vmi-img-cli-XXXXXX)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"

echo "--- create chain (base <- cache <- cow)"
"$VMI_IMG" create base.img 256M -f raw
"$VMI_IMG" create centos.cache 256M -b base.img -q 32M -c 512
"$VMI_IMG" create vm0.cow 256M -b centos.cache

echo "--- info shows the cache extension"
"$VMI_IMG" info centos.cache | grep -q "VMI cache: yes"
"$VMI_IMG" info centos.cache | grep -q "cache quota: 32.0 MiB"

echo "--- chain shows the permission dance"
CHAIN=$("$VMI_IMG" chain vm0.cow)
echo "$CHAIN" | grep -q "VMI cache, rw"   # cache keeps write permission
echo "$CHAIN" | grep -q "raw, ro"         # base demoted read-only

echo "--- check is clean on fresh images"
"$VMI_IMG" check centos.cache
"$VMI_IMG" check vm0.cow

echo "--- map on an empty overlay"
"$VMI_IMG" map vm0.cow | grep -q "0 B data"

echo "--- resize grows the virtual disk"
"$VMI_IMG" resize vm0.cow 512M
"$VMI_IMG" info vm0.cow | grep -q "512.0 MiB"

echo "--- invalid invocations fail"
if "$VMI_IMG" create bad.qcow2 0 2>/dev/null; then exit 1; fi
if "$VMI_IMG" info nonexistent.qcow2 2>/dev/null; then exit 1; fi
if "$VMI_IMG" commit base.img 2>/dev/null; then exit 1; fi

echo "--- commit a plain overlay"
"$VMI_IMG" create mid.qcow2 64M
"$VMI_IMG" create top.qcow2 64M -b mid.qcow2
"$VMI_IMG" commit top.qcow2

echo "ALL CLI CHECKS PASSED"
