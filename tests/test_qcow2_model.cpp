// Randomized differential test of the QCOW2 driver (with the VMI-cache
// extension) against a flat in-memory reference model.
//
// The reference is trivial: a byte array initialized with the base
// image's content, updated on every guest write. The device under test
// is the paper's full chain — raw base <- cache image (quota'd,
// copy-on-read) <- CoW overlay — driven with a seeded random mix of
// reads and writes. Any translation, CoR-fill, COW, or quota bug shows
// up as a byte mismatch; the op log printed on failure replays the
// shortest prefix that matters (ops are independent given the model).
//
// Invariants checked after each run:
//  * every read returns exactly the model's bytes;
//  * the cache image's data growth is entirely copy-on-read:
//    cor_clusters * cluster_size == allocated_data_bytes;
//  * the cache never exceeds its quota (file high-water mark);
//  * metadata stays consistent (refcount walk finds no leaks/corruption).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using block::DevicePtr;
using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

/// Compressible base content: runs of repeated bytes mixed with literal
/// noise, the shape OS images actually have. Seeded and deterministic.
std::vector<std::uint8_t> mixed_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run = std::min<std::size_t>(1 + rng.below(512), n - i);
    if (rng.chance(0.7)) {
      const auto b = static_cast<std::uint8_t>(rng.next());
      std::memset(v.data() + i, b, run);
    } else {
      for (std::size_t k = 0; k < run; ++k) {
        v[i + k] = static_cast<std::uint8_t>(rng.next());
      }
    }
    i += run;
  }
  return v;
}

struct ModelParams {
  std::uint64_t seed = 1;
  std::uint32_t cache_bits = 9;
  std::uint64_t quota = 2_MiB;
  int ops = 300;
  std::uint64_t image_size = 1_MiB;
  std::uint64_t max_op_len = 200 * 1024;
  /// Store CoR fills compressed (cache tier only).
  bool compress = false;
  /// Use compressible mixed content for the base instead of pure noise.
  bool compressible_base = false;
};

/// Run one seeded differential session. Uses ASSERT_* internally — call
/// via ASSERT_NO_FATAL_FAILURE.
void run_differential(const ModelParams& p) {
  MemImageStore store;

  auto base = store.create_file("base.img");
  ASSERT_TRUE(base.ok());
  const auto base_data = p.compressible_base
                             ? mixed_bytes(p.seed ^ 0x9e3779b9, p.image_size)
                             : pattern_bytes(p.seed ^ 0x9e3779b9, p.image_size);
  ASSERT_TRUE(sync_wait((*base)->pwrite(0, base_data)).ok());

  auto c = sync_wait(create_cache_image(
      store, "vmi.cache", "base.img", p.quota,
      {.cluster_bits = p.cache_bits, .virtual_size = 0}));
  ASSERT_TRUE(c.ok()) << to_string(c.error());
  ASSERT_TRUE(sync_wait(create_cow_image(store, "vm.cow", "vmi.cache")).ok());
  auto dev = sync_wait(open_image(store, "vm.cow"));
  ASSERT_TRUE(dev.ok()) << to_string(dev.error());
  if (p.compress) {
    auto* c0 = dynamic_cast<Qcow2Device*>((*dev)->backing());
    ASSERT_NE(c0, nullptr);
    c0->set_cor_compress(true);
  }

  // The flat reference: what a correct virtual disk must read as.
  std::vector<std::uint8_t> model = base_data;

  Rng rng{p.seed};
  std::string oplog = "seed=" + std::to_string(p.seed) +
                      " cluster=" + std::to_string(1u << p.cache_bits) +
                      " quota=" + std::to_string(p.quota) + "\n";
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < p.ops; ++i) {
    const std::uint64_t off = rng.below(p.image_size);
    const std::uint64_t len =
        1 + rng.below(std::min(p.image_size - off, p.max_op_len));
    if (rng.chance(0.35)) {
      oplog += "  op " + std::to_string(i) + ": write off=" +
               std::to_string(off) + " len=" + std::to_string(len) + "\n";
      const auto data = pattern_bytes(rng.next(), len);
      ASSERT_TRUE(sync_wait((*dev)->write(off, data)).ok()) << oplog;
      std::memcpy(model.data() + off, data.data(), len);
    } else {
      oplog += "  op " + std::to_string(i) + ": read off=" +
               std::to_string(off) + " len=" + std::to_string(len) + "\n";
      buf.assign(len, 0);
      ASSERT_TRUE(sync_wait((*dev)->read(off, buf)).ok()) << oplog;
      ASSERT_EQ(0, std::memcmp(buf.data(), model.data() + off, len))
          << oplog << "mismatch on read of [" << off << ", " << off + len
          << ")";
    }
  }

  // Full-image sweep: catches stale clusters the random walk missed.
  buf.assign(p.image_size, 0);
  ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok()) << oplog;
  ASSERT_EQ(0, std::memcmp(buf.data(), model.data(), p.image_size)) << oplog;

  auto* cache = dynamic_cast<Qcow2Device*>((*dev)->backing());
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->is_cache_image());

  // CoR accounting invariant: the cache's data clusters exist only
  // because copy-on-read stored them. cor_bytes counts logical bytes in
  // both modes; the physical allocation matches it exactly when plain,
  // and can only shrink when compressed (payload packing).
  EXPECT_EQ(cache->stats().cor_bytes,
            cache->stats().cor_clusters * cache->cluster_size())
      << oplog;
  if (!p.compress) {
    EXPECT_EQ(cache->stats().cor_clusters * cache->cluster_size(),
              cache->allocated_data_bytes())
        << oplog;
  } else {
    EXPECT_LE(cache->allocated_data_bytes(),
              cache->stats().cor_clusters * cache->cluster_size())
        << oplog;
    auto cst = sync_wait(cache->compression_stats());
    ASSERT_TRUE(cst.ok());
    EXPECT_EQ(cst->logical_bytes, cst->compressed_clusters *
                                      cache->cluster_size())
        << oplog;
    EXPECT_LE(cst->physical_bytes, cst->logical_bytes) << oplog;
    if (p.compressible_base) {
      EXPECT_GT(cst->compressed_clusters, 0u) << oplog;
    }
  }

  // Quota is a hard bound on the cache file (§3: "maximum file size").
  EXPECT_LE(cache->file_bytes(), p.quota) << oplog;
  if (!cache->cor_active()) {
    EXPECT_EQ(cache->stats().cor_stopped, 1u) << oplog;
  }

  // Metadata consistency of both overlay and cache.
  auto cow_check = sync_wait(
      dynamic_cast<Qcow2Device*>(dev->get())->check());
  ASSERT_TRUE(cow_check.ok());
  EXPECT_TRUE(cow_check->clean())
      << oplog << "cow: leaked=" << cow_check->leaked_clusters
      << " corrupt=" << cow_check->corruptions;
  auto cache_check = sync_wait(cache->check());
  ASSERT_TRUE(cache_check.ok());
  EXPECT_TRUE(cache_check->clean())
      << oplog << "cache: leaked=" << cache_check->leaked_clusters
      << " corrupt=" << cache_check->corruptions;

  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST(Qcow2Model, Small512Clusters) {
  // Paper's recommended cache geometry, roomy quota: CoR never stops.
  ASSERT_NO_FATAL_FAILURE(run_differential(
      {.seed = 101, .cache_bits = 9, .quota = 4_MiB, .ops = 300}));
}

TEST(Qcow2Model, Small512ClustersTightQuota) {
  // Quota far below the working set: ENOSPC mid-run, reads must keep
  // bypassing population correctly.
  ASSERT_NO_FATAL_FAILURE(run_differential(
      {.seed = 202, .cache_bits = 9, .quota = 256_KiB, .ops = 300}));
}

TEST(Qcow2Model, Default64KClusters) {
  // QEMU's default geometry: every CoR fill is cluster-expanded (the
  // Fig 9 amplification path).
  ASSERT_NO_FATAL_FAILURE(run_differential(
      {.seed = 303, .cache_bits = 16, .quota = 4_MiB, .ops = 200}));
}

TEST(Qcow2Model, Default64KClustersTightQuota) {
  ASSERT_NO_FATAL_FAILURE(run_differential(
      {.seed = 404, .cache_bits = 16, .quota = 512_KiB, .ops = 200}));
}

TEST(Qcow2Model, WriteHeavyMix) {
  // More writes than reads: stresses COW-over-cache interactions (the
  // overlay's clusters must win over both cache and base).
  ModelParams p{.seed = 505, .cache_bits = 9, .quota = 1_MiB, .ops = 400};
  p.max_op_len = 64 * 1024;
  ASSERT_NO_FATAL_FAILURE(run_differential(p));
}

TEST(Qcow2Model, Compressed4KClusters) {
  // Compressed CoR fills against the flat reference: translation,
  // payload packing, rewrite-on-write and the physical-bytes accounting
  // all run under the same differential harness.
  ASSERT_NO_FATAL_FAILURE(run_differential({.seed = 707,
                                            .cache_bits = 12,
                                            .quota = 4_MiB,
                                            .ops = 300,
                                            .compress = true,
                                            .compressible_base = true}));
}

TEST(Qcow2Model, CompressedIncompressibleContent) {
  // Pure noise: every cluster falls back to the plain store — the mixed
  // plain/compressed bookkeeping must still balance exactly.
  ASSERT_NO_FATAL_FAILURE(run_differential({.seed = 808,
                                            .cache_bits = 12,
                                            .quota = 4_MiB,
                                            .ops = 200,
                                            .compress = true,
                                            .compressible_base = false}));
}

TEST(Qcow2Model, CompressedTightQuota) {
  // ENOSPC mid-run with packed payloads: the run stops at the quota edge
  // and reads keep bypassing population correctly.
  ASSERT_NO_FATAL_FAILURE(run_differential({.seed = 909,
                                            .cache_bits = 12,
                                            .quota = 256_KiB,
                                            .ops = 300,
                                            .compress = true,
                                            .compressible_base = true}));
}

TEST(Qcow2Model, Compressed64KClusters) {
  ASSERT_NO_FATAL_FAILURE(run_differential({.seed = 1010,
                                            .cache_bits = 16,
                                            .quota = 4_MiB,
                                            .ops = 150,
                                            .compress = true,
                                            .compressible_base = true}));
}

TEST(Qcow2Model, CompressedSurvivesReopen) {
  // Compressed clusters are an on-disk format feature, not a session
  // flag: a reopen that never calls set_cor_compress must still read
  // them, count them, and check clean.
  MemImageStore store;
  constexpr std::uint64_t kSize = 1_MiB;
  auto base = store.create_file("base.img");
  ASSERT_TRUE(base.ok());
  const auto base_data = mixed_bytes(42, kSize);
  ASSERT_TRUE(sync_wait((*base)->pwrite(0, base_data)).ok());
  ASSERT_TRUE(sync_wait(create_cache_image(
                  store, "vmi.cache", "base.img", 4_MiB,
                  {.cluster_bits = 12, .virtual_size = 0}))
                  .ok());
  ASSERT_TRUE(sync_wait(create_cow_image(store, "vm.cow", "vmi.cache")).ok());

  std::uint64_t compressed = 0;
  {
    auto dev = sync_wait(open_image(store, "vm.cow"));
    ASSERT_TRUE(dev.ok()) << to_string(dev.error());
    auto* cache = dynamic_cast<Qcow2Device*>((*dev)->backing());
    ASSERT_NE(cache, nullptr);
    cache->set_cor_compress(true);
    std::vector<std::uint8_t> buf(kSize, 0);
    ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());  // fill everything
    ASSERT_EQ(0, std::memcmp(buf.data(), base_data.data(), kSize));
    auto cst = sync_wait(cache->compression_stats());
    ASSERT_TRUE(cst.ok());
    compressed = cst->compressed_clusters;
    EXPECT_GT(compressed, 0u);
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }

  auto dev = sync_wait(open_image(store, "vm.cow"));
  ASSERT_TRUE(dev.ok()) << to_string(dev.error());
  auto* cache = dynamic_cast<Qcow2Device*>((*dev)->backing());
  ASSERT_NE(cache, nullptr);
  auto cst = sync_wait(cache->compression_stats());
  ASSERT_TRUE(cst.ok());
  EXPECT_EQ(cst->compressed_clusters, compressed);
  std::vector<std::uint8_t> buf(kSize, 0);
  ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), base_data.data(), kSize));
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST(Qcow2Model, JournalRoundTrip) {
  // Differential session on a journaled chain (both cache and overlay
  // carry a refcount journal, deliberately tiny so checkpoints fire
  // mid-run), then close and reopen: content must match the model, the
  // journal must survive the round trip, and both images must check
  // clean — a clean close retires every record.
  MemImageStore store;
  constexpr std::uint64_t kSize = 1_MiB;
  auto base = store.create_file("base.img");
  ASSERT_TRUE(base.ok());
  const auto base_data = pattern_bytes(606 ^ 0x9e3779b9, kSize);
  ASSERT_TRUE(sync_wait((*base)->pwrite(0, base_data)).ok());
  ASSERT_TRUE(sync_wait(create_cache_image(
                  store, "vmi.cache", "base.img", 4_MiB,
                  {.cluster_bits = 9, .virtual_size = 0,
                   .journal_sectors = 8}))
                  .ok());
  ASSERT_TRUE(sync_wait(create_cow_image(
                  store, "vm.cow", "vmi.cache",
                  {.cluster_bits = 16, .virtual_size = 0,
                   .journal_sectors = 8}))
                  .ok());

  std::vector<std::uint8_t> model = base_data;
  {
    auto dev = sync_wait(open_image(store, "vm.cow"));
    ASSERT_TRUE(dev.ok()) << to_string(dev.error());
    auto* cow = dynamic_cast<Qcow2Device*>(dev->get());
    ASSERT_NE(cow, nullptr);
    ASSERT_TRUE(cow->has_journal());
    EXPECT_EQ(cow->journal_sector_count(), 8u);
    Rng rng{606};
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t off = rng.below(kSize);
      const std::uint64_t len =
          1 + rng.below(std::min<std::uint64_t>(kSize - off, 64_KiB));
      if (rng.chance(0.5)) {
        const auto data = pattern_bytes(rng.next(), len);
        ASSERT_TRUE(sync_wait((*dev)->write(off, data)).ok());
        std::memcpy(model.data() + off, data.data(), len);
      } else {
        buf.assign(len, 0);
        ASSERT_TRUE(sync_wait((*dev)->read(off, buf)).ok());
        ASSERT_EQ(0, std::memcmp(buf.data(), model.data() + off, len));
      }
    }
    // The 8-sector journal fills after 7 records: the run above must have
    // checkpointed at least once for the round trip to mean anything.
    EXPECT_GT(cow->journal_generation(), 1u);
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }

  auto dev = sync_wait(open_image(store, "vm.cow"));
  ASSERT_TRUE(dev.ok()) << to_string(dev.error());
  auto* cow = dynamic_cast<Qcow2Device*>(dev->get());
  ASSERT_NE(cow, nullptr);
  ASSERT_TRUE(cow->has_journal());
  EXPECT_FALSE(cow->dirty());
  std::vector<std::uint8_t> buf(kSize, 0);
  ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
  ASSERT_EQ(0, std::memcmp(buf.data(), model.data(), kSize));
  auto cow_check = sync_wait(cow->check());
  ASSERT_TRUE(cow_check.ok());
  EXPECT_TRUE(cow_check->clean())
      << "cow: leaked=" << cow_check->leaked_clusters
      << " corrupt=" << cow_check->corruptions;
  auto* cache = dynamic_cast<Qcow2Device*>((*dev)->backing());
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->has_journal());
  auto cache_check = sync_wait(cache->check());
  ASSERT_TRUE(cache_check.ok());
  EXPECT_TRUE(cache_check->clean())
      << "cache: leaked=" << cache_check->leaked_clusters
      << " corrupt=" << cache_check->corruptions;
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST(Qcow2Model, DeterministicAcrossRuns) {
  // Same seed, two sessions: identical device-level counters. Guards the
  // generator (and the driver) against hidden nondeterminism.
  auto run_counters = [](std::uint64_t seed) {
    MemImageStore store;
    auto base = store.create_file("base.img");
    EXPECT_TRUE(base.ok());
    const auto data = pattern_bytes(seed, 256_KiB);
    EXPECT_TRUE(sync_wait((*base)->pwrite(0, data)).ok());
    EXPECT_TRUE(sync_wait(create_cache_image(store, "c", "base.img", 1_MiB,
                                             {.cluster_bits = 9,
                                              .virtual_size = 0}))
                    .ok());
    EXPECT_TRUE(sync_wait(create_cow_image(store, "w", "c")).ok());
    auto dev = sync_wait(open_image(store, "w"));
    EXPECT_TRUE(dev.ok());
    Rng rng{seed};
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t off = rng.below(256_KiB);
      const std::uint64_t len = 1 + rng.below(256_KiB - off);
      buf.assign(len, 0);
      EXPECT_TRUE(sync_wait((*dev)->read(off, buf)).ok());
    }
    auto* cache = dynamic_cast<Qcow2Device*>((*dev)->backing());
    return std::pair<std::uint64_t, std::uint64_t>(
        cache->stats().cor_clusters, cache->stats().backing_reads);
  };
  EXPECT_EQ(run_counters(7), run_counters(7));
}

}  // namespace
}  // namespace vmic::qcow2
