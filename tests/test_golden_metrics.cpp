// Golden-metrics suite: proves the obs refactor preserved simulation
// behaviour and that metrics snapshots are deterministic.
//
//  * determinism: the same scenario run twice renders a byte-identical
//    metrics snapshot (the simulation is single-threaded and seeded);
//  * pinned values: a fixed 4-node Fig-2-style scenario must reproduce
//    the exact byte counts and boot times captured from the pre-obs
//    codebase — any drift means the instrumentation changed behaviour;
//  * cross-checks: registry-backed series agree with the ad-hoc
//    ScenarioResult fields they replaced.

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <span>
#include <vector>

#include "cloud/engine.hpp"
#include "cluster/scenario.hpp"
#include "crash/explore.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/env.hpp"
#include "sim/run.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::cluster {
namespace {

using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

ClusterParams fig2_params() {
  ClusterParams cp;
  cp.compute_nodes = 4;
  return cp;
}

ScenarioConfig fig2_config(CacheMode mode, CacheState state) {
  ScenarioConfig sc;
  sc.num_vms = 4;
  sc.num_vmis = 1;
  sc.mode = mode;
  sc.state = state;
  return sc;
}

TEST(GoldenMetrics, SnapshotIsByteStableAcrossRuns) {
  const auto r1 = run_scenario(fig2_params(),
                               fig2_config(CacheMode::compute_disk,
                                           CacheState::cold));
  const auto r2 = run_scenario(fig2_params(),
                               fig2_config(CacheMode::compute_disk,
                                           CacheState::cold));
  const std::string t1 = r1.metrics.to_text();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, r2.metrics.to_text());
  EXPECT_EQ(r1.metrics.to_json(), r2.metrics.to_json());
}

// Values captured from the pre-obs codebase (plain uint64 counters) for
// this exact scenario. They pin the simulation's observable behaviour:
// the obs layer must be a pure reader. Boot times were re-captured when
// the durability work added the dirty-bit header write (one extra 8-byte
// metadata pwrite per image session, ~100 us on the simulated media).

TEST(GoldenMetrics, PlainQcow2ColdPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::none, CacheState::cold));
  EXPECT_EQ(r.storage_payload_bytes, 547434496u);
  EXPECT_EQ(r.storage_disk_reads, 1u);
  EXPECT_EQ(r.storage_disk_bytes_read, 65536u);
  EXPECT_NEAR(r.mean_boot, 37.796141462, 1e-9);
  EXPECT_NEAR(r.max_boot, 37.796141462, 1e-9);
}

TEST(GoldenMetrics, ComputeDiskColdPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::cold));
  EXPECT_EQ(r.storage_payload_bytes, 479723520u);
  EXPECT_NEAR(r.mean_boot, 37.389519366, 1e-9);
}

TEST(GoldenMetrics, ComputeDiskWarmPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::warm));
  EXPECT_EQ(r.storage_payload_bytes, 16384u);
  EXPECT_EQ(r.warm_cache_file_bytes, 95254016u);
  EXPECT_NEAR(r.mean_boot, 32.998217362, 1e-9);
}

// The registry-backed series must agree with the ad-hoc counters they
// replaced (ScenarioResult reads NfsServer/RotationalDisk stats directly;
// the snapshot reads the same instruments through the registry).

TEST(GoldenMetrics, RegistryAgreesWithAdHocCounters) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::none, CacheState::cold));
  const obs::MetricsSnapshot& m = r.metrics;

  const std::uint64_t tx = m.counter_total("nfs.server.bytes_tx");
  const std::uint64_t rx = m.counter_total("nfs.server.bytes_rx");
  EXPECT_EQ(tx + rx, r.storage_payload_bytes);

  const obs::MetricPoint* disk_reads =
      m.find("storage.reads", {{"node", "storage0"}, {"medium", "disk"}});
  ASSERT_NE(disk_reads, nullptr);
  EXPECT_EQ(disk_reads->counter, r.storage_disk_reads);

  const obs::MetricPoint* disk_bytes = m.find(
      "storage.bytes_read", {{"node", "storage0"}, {"medium", "disk"}});
  ASSERT_NE(disk_bytes, nullptr);
  EXPECT_EQ(disk_bytes->counter, r.storage_disk_bytes_read);

  // Per-VM boot times all land in the boot-seconds histogram.
  const obs::MetricPoint* hist = m.find("cluster.boot_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(r.vms.size()));

  // The qcow2 aggregates saw every guest read of the scenario.
  EXPECT_GT(m.counter_total("qcow2.guest_reads"), 0u);
}

TEST(GoldenMetrics, CacheModeExportsCorSeries) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::cold));
  const obs::MetricsSnapshot& m = r.metrics;
  const obs::MetricPoint* fills =
      m.find("qcow2.cor_fills", {{"image", "cache"}});
  ASSERT_NE(fills, nullptr);
  EXPECT_GT(fills->counter, 0u);
  // CoR stores whole clusters: bytes == clusters * 512 (cache images use
  // the paper's 512-byte clusters by default).
  const obs::MetricPoint* clusters =
      m.find("qcow2.cor_clusters", {{"image", "cache"}});
  const obs::MetricPoint* bytes =
      m.find("qcow2.cor_bytes", {{"image", "cache"}});
  ASSERT_NE(clusters, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->counter, clusters->counter * 512u);
  // Plain overlays never copy-on-read.
  EXPECT_EQ(m.counter_total("qcow2.cor_fills"), fills->counter);
}

// A small fixed cloud scenario pins the cloud.* namespace the same way
// the Fig-2 scenarios pin cluster.*: any drift in workload generation,
// scheduling, placement, or SLO accounting shows up as a changed count.

TEST(GoldenMetrics, CloudSmallScenarioPinnedValues) {
  cloud::CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = 600.0;
  cfg.workload.mean_interarrival_s = 30.0;
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  const cloud::CloudResult r = cloud::run_cloud(cfg);

  EXPECT_EQ(r.arrivals, 20);
  EXPECT_EQ(r.completed, 20);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.warm_hits, 14);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.cache_evictions, 1u);
  EXPECT_EQ(r.storage_payload_bytes, 396725760u);
  EXPECT_NEAR(r.cache_hit_ratio, 0.7, 1e-9);
  EXPECT_NEAR(r.deploy.mean, 7.81614396925, 1e-9);
  EXPECT_NEAR(r.deploy.p99, 12.35222641, 1e-9);
  EXPECT_NEAR(r.sim_seconds, 657.417208613, 1e-9);

  // The snapshot mirrors the result struct exactly.
  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counter_total("cloud.arrivals"),
            static_cast<std::uint64_t>(r.arrivals));
  EXPECT_EQ(m.counter_total("cloud.completed"),
            static_cast<std::uint64_t>(r.completed));
  const obs::MetricPoint* hist = m.find("cloud.deploy_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(r.completed));
}

// --------------------------------------------------------------------------
// Pinned concurrent copy-on-read scenario. 16 readers race on one cold
// cluster, then 8 more populate disjoint clusters, over a sim-timed
// medium. Pins the single-flight protocol's observable behaviour — fetch
// counts, wait/dedup counters, allocator contention, and the final sim
// clock. Any drift means the range-lock/fill protocol changed timing or
// I/O behaviour.
// --------------------------------------------------------------------------

sim::Task<bool> gm_pwrite_all(io::BlockBackend& be,
                              std::span<const std::uint8_t> data) {
  auto r = co_await be.pwrite(0, data);
  co_return r.ok();
}

sim::Task<void> gm_reader(block::BlockDevice& dev, std::uint64_t off,
                          std::span<std::uint8_t> dst, bool& ok) {
  auto r = co_await dev.read(off, dst);
  ok = r.ok();
}

TEST(GoldenMetrics, ConcurrentCorPinnedValues) {
  constexpr std::uint64_t kSize = 4_MiB;
  obs::Hub hub;
  sim::SimEnv env;
  storage::MemMedium mem{env, {.latency_us = 200.0, .bandwidth_bps = 200e6}};
  storage::SimDirectory dir{mem};

  std::vector<std::uint8_t> data(kSize);
  Rng rng{42};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  {
    auto be = dir.create_file("base.img");
    ASSERT_TRUE(be.ok());
    ASSERT_TRUE(sim::run_sync(env, gm_pwrite_all(**be, data)));
  }
  ASSERT_TRUE(sim::run_sync(env, qcow2::create_cache_image(
                                     dir, "vmi.cache", "base.img", 4_MiB,
                                     {.cluster_bits = 16, .virtual_size = 0}))
                  .ok());
  ASSERT_TRUE(
      sim::run_sync(env, qcow2::create_cow_image(dir, "vm.cow", "vmi.cache"))
          .ok());
  auto opened = sim::run_sync(
      env, qcow2::open_image(dir, "vm.cow", /*writable=*/true,
                             /*cache_backing_ro=*/false, &hub));
  ASSERT_TRUE(opened.ok());
  block::DevicePtr cow = std::move(*opened);

  // Phase 1: 16 readers race on the same cold 64 KiB cluster.
  std::vector<std::vector<std::uint8_t>> bufs(24);
  std::deque<bool> oks(24, false);
  for (int i = 0; i < 16; ++i) {
    bufs[i].resize(64_KiB);
    env.spawn(gm_reader(*cow, 0, bufs[i], oks[i]));
  }
  env.run();
  // Phase 2: 8 readers populate disjoint cold clusters concurrently.
  for (int i = 0; i < 8; ++i) {
    bufs[16 + i].resize(64_KiB);
    env.spawn(
        gm_reader(*cow, 1_MiB + i * 256_KiB, bufs[16 + i], oks[16 + i]));
  }
  env.run();

  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(oks[i]) << "reader " << i;
    const std::uint64_t off = i < 16 ? 0 : 1_MiB + (i - 16) * 256_KiB;
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + off, 64_KiB))
        << "reader " << i;
  }

  const auto m = hub.registry.snapshot();
  // Phase 1: one fetch, 15 queued behind it and served locally; phase 2:
  // eight independent fetches, no waits.
  const obs::MetricPoint* br =
      m.find("qcow2.backing_reads", {{"image", "cache"}});
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(br->counter, 9u);
  const obs::MetricPoint* bfb =
      m.find("qcow2.bytes_from_backing", {{"image", "cache"}});
  ASSERT_NE(bfb, nullptr);
  EXPECT_EQ(bfb->counter, 9u * 64_KiB);
  EXPECT_EQ(m.counter_total("qcow2.cor.inflight_waits"), 15u);
  EXPECT_EQ(m.counter_total("qcow2.cor.dedup_hits"), 15u);
  EXPECT_EQ(m.counter_total("qcow2.cor_clusters"), 9u);
  EXPECT_EQ(m.counter_total("qcow2.cor_stopped"), 0u);
  // Captured from a reference run; pins allocator contention and timing.
  EXPECT_EQ(m.counter_total("qcow2.alloc_lock_waits"), 15u);
  EXPECT_EQ(env.now(), 44719481u);
}

TEST(GoldenMetrics, TracingDoesNotPerturbTiming) {
  obs::Hub hub;
  hub.tracer.set_enabled(true);
  ClusterParams cp = fig2_params();
  cp.hub = &hub;
  const auto traced = run_scenario(cp, fig2_config(CacheMode::compute_disk,
                                                   CacheState::cold));
  const auto plain = run_scenario(fig2_params(),
                                  fig2_config(CacheMode::compute_disk,
                                              CacheState::cold));
  EXPECT_EQ(traced.storage_payload_bytes, plain.storage_payload_bytes);
  EXPECT_DOUBLE_EQ(traced.mean_boot, plain.mean_boot);
  EXPECT_GT(hub.tracer.size(), 0u);
  // Trace export is well-formed enough to start and end as one object.
  const std::string json = hub.tracer.to_chrome_json();
  EXPECT_EQ(json.substr(0, 16), "{\"traceEvents\":[");
  EXPECT_EQ(json.back(), '}');
}

// --------------------------------------------------------------------------
// Pinned crash-consistency counters. A fixed crash::explore sweep is
// fully deterministic, so the crash.* and qcow2.repair.* namespaces pin
// exactly: any drift means the fault-injection schedule, the barrier
// placement, or the repair rules changed behaviour.
// --------------------------------------------------------------------------

TEST(GoldenMetrics, CrashExplorePinnedValues) {
  obs::Hub hub;
  crash::ExploreConfig cfg;
  cfg.seed = 1;
  cfg.guest_ops = 20;
  cfg.max_crash_points = 12;
  cfg.hub = &hub;
  const crash::ExploreReport r = crash::explore(cfg);
  ASSERT_TRUE(r.pass()) << crash::to_json(r, cfg);

  EXPECT_EQ(r.total_events, 67u);
  EXPECT_EQ(r.crash_points, 12u);
  EXPECT_EQ(r.dirty_images, 11u);
  EXPECT_EQ(r.pre_repair_leaks, 16u);
  EXPECT_EQ(r.leaks_dropped, 16u);
  EXPECT_EQ(r.digest, 14649543974109951761ull);

  const auto m = hub.registry.snapshot();
  EXPECT_EQ(m.counter_total("crash.power_cuts"), r.power_cuts);
  EXPECT_EQ(m.counter_total("crash.writes_kept"), 11u);
  EXPECT_EQ(m.counter_total("crash.writes_dropped"), 3u);
  EXPECT_EQ(m.counter_total("crash.writes_torn"), 1u);
  EXPECT_EQ(m.counter_total("qcow2.repair.runs"), 12u);
  EXPECT_EQ(m.counter_total("qcow2.repair.dirty_opens"), 11u);
  EXPECT_EQ(m.counter_total("qcow2.repair.leaks_dropped"), r.leaks_dropped);
}

// The journal-mode sweep pins the qcow2.journal.* namespace: appends and
// checkpoints happen on the recording run and every replayed point, and
// each dirty reopen must repair by replay (fallbacks pin to zero — a
// drift here means replay stopped proving consistency somewhere).

TEST(GoldenMetrics, JournalExplorePinnedValues) {
  obs::Hub hub;
  crash::ExploreConfig cfg;
  cfg.seed = 2;
  cfg.guest_ops = 20;
  cfg.max_crash_points = 12;
  cfg.journal_sectors = 4;
  cfg.hub = &hub;
  const crash::ExploreReport r = crash::explore(cfg);
  ASSERT_TRUE(r.pass()) << crash::to_json(r, cfg);

  EXPECT_GT(r.journal_replays, 0u);
  EXPECT_EQ(r.journal_fallbacks, 0u);

  const auto m = hub.registry.snapshot();
  EXPECT_EQ(m.counter_total("qcow2.journal.replays"), r.journal_replays);
  EXPECT_EQ(m.counter_total("qcow2.journal.fallbacks"), 0u);
  EXPECT_GT(m.counter_total("qcow2.journal.appends"), 0u);
  EXPECT_GT(m.counter_total("qcow2.journal.checkpoints"), 0u);

  // Exact pins: the schedule is deterministic, so the counter totals are
  // part of the golden surface like the digest.
  EXPECT_EQ(r.total_events, 79u);
  EXPECT_EQ(r.journal_replays, 11u);
  EXPECT_EQ(m.counter_total("qcow2.journal.appends"), 93u);
  EXPECT_EQ(m.counter_total("qcow2.journal.checkpoints"), 23u);
  EXPECT_EQ(m.counter_total("qcow2.journal.entries_replayed"), 22u);
  EXPECT_EQ(r.digest, 670551284262492835ull);
}

// A small crashy cloud run pins the salvage path: one node crash, whose
// recovery repairs and re-adopts the surviving caches.

TEST(GoldenMetrics, CloudCrashSalvagePinnedValues) {
  cloud::CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = 600.0;
  cfg.workload.mean_interarrival_s = 30.0;
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  // A late crash on node 0: by then its caches are warm and idle, prime
  // salvage material.
  cfg.failures.crashes.push_back({400.0, 60.0, 0});
  const cloud::CloudResult r = cloud::run_cloud(cfg);

  EXPECT_EQ(r.node_crashes, 1);
  EXPECT_EQ(r.node_recoveries, 1);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.caches_salvaged, 1);
  EXPECT_EQ(r.caches_invalidated, 0);

  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counter_total("cloud.cache_salvaged"),
            static_cast<std::uint64_t>(r.caches_salvaged));
  EXPECT_EQ(m.counter_total("cloud.cache_invalidated"),
            static_cast<std::uint64_t>(r.caches_invalidated));
}

// Every count of one planned restart with the durable manifest, pinned:
// the adoption pass, the publish cadence, and the post-restart storage
// bill are all part of the determinism contract. An unintentional change
// to any publish point or to the adoption order shows up here first.
TEST(GoldenMetrics, RestartAdoptPinnedValues) {
  cloud::CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = 600.0;
  cfg.workload.mean_interarrival_s = 30.0;
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  cfg.manifest = true;
  cfg.restart_at_s.push_back(400.0);
  cfg.restart_down_s = 20.0;
  const cloud::CloudResult r = cloud::run_cloud(cfg);

  EXPECT_EQ(r.arrivals, 20);
  EXPECT_EQ(r.completed, 20);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.restarts, 1);
  // Four caches survive the power cycle verified; one — left mid-write by
  // the deployment the restart killed — fails verification and degrades
  // to cold (the advisory-manifest contract: never adopt what you cannot
  // re-verify).
  EXPECT_EQ(r.caches_readopted, 4);
  EXPECT_EQ(r.adopt_failures, 1);
  EXPECT_EQ(r.adopt_stale, 0);
  EXPECT_EQ(r.vm_crashes, 1);
  EXPECT_EQ(r.manifest_publishes, 42u);
  EXPECT_EQ(r.post_restart_storage_bytes, 104179720u);
  EXPECT_EQ(r.leaked_slots, 0);

  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counter_total("cloud.adopt.ok"), 4u);
  EXPECT_EQ(m.counter_total("cloud.adopt.failed"), 1u);
  EXPECT_EQ(m.counter_total("cloud.restart.count"), 1u);
  EXPECT_EQ(m.counter_total("manifest.publishes"), 42u);
}

}  // namespace
}  // namespace vmic::cluster
