// Golden-metrics suite: proves the obs refactor preserved simulation
// behaviour and that metrics snapshots are deterministic.
//
//  * determinism: the same scenario run twice renders a byte-identical
//    metrics snapshot (the simulation is single-threaded and seeded);
//  * pinned values: a fixed 4-node Fig-2-style scenario must reproduce
//    the exact byte counts and boot times captured from the pre-obs
//    codebase — any drift means the instrumentation changed behaviour;
//  * cross-checks: registry-backed series agree with the ad-hoc
//    ScenarioResult fields they replaced.

#include <gtest/gtest.h>

#include "cloud/engine.hpp"
#include "cluster/scenario.hpp"

namespace vmic::cluster {
namespace {

ClusterParams fig2_params() {
  ClusterParams cp;
  cp.compute_nodes = 4;
  return cp;
}

ScenarioConfig fig2_config(CacheMode mode, CacheState state) {
  ScenarioConfig sc;
  sc.num_vms = 4;
  sc.num_vmis = 1;
  sc.mode = mode;
  sc.state = state;
  return sc;
}

TEST(GoldenMetrics, SnapshotIsByteStableAcrossRuns) {
  const auto r1 = run_scenario(fig2_params(),
                               fig2_config(CacheMode::compute_disk,
                                           CacheState::cold));
  const auto r2 = run_scenario(fig2_params(),
                               fig2_config(CacheMode::compute_disk,
                                           CacheState::cold));
  const std::string t1 = r1.metrics.to_text();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, r2.metrics.to_text());
  EXPECT_EQ(r1.metrics.to_json(), r2.metrics.to_json());
}

// Values captured from the pre-obs codebase (plain uint64 counters) for
// this exact scenario. They pin the simulation's observable behaviour:
// the obs layer must be a pure reader.

TEST(GoldenMetrics, PlainQcow2ColdPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::none, CacheState::cold));
  EXPECT_EQ(r.storage_payload_bytes, 547434496u);
  EXPECT_EQ(r.storage_disk_reads, 1u);
  EXPECT_EQ(r.storage_disk_bytes_read, 65536u);
  EXPECT_NEAR(r.mean_boot, 37.796041396, 1e-9);
  EXPECT_NEAR(r.max_boot, 37.796041396, 1e-9);
}

TEST(GoldenMetrics, ComputeDiskColdPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::cold));
  EXPECT_EQ(r.storage_payload_bytes, 479723520u);
  EXPECT_NEAR(r.mean_boot, 37.389418298, 1e-9);
}

TEST(GoldenMetrics, ComputeDiskWarmPinnedValues) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::warm));
  EXPECT_EQ(r.storage_payload_bytes, 16384u);
  EXPECT_EQ(r.warm_cache_file_bytes, 95254016u);
  EXPECT_NEAR(r.mean_boot, 32.998117296, 1e-9);
}

// The registry-backed series must agree with the ad-hoc counters they
// replaced (ScenarioResult reads NfsServer/RotationalDisk stats directly;
// the snapshot reads the same instruments through the registry).

TEST(GoldenMetrics, RegistryAgreesWithAdHocCounters) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::none, CacheState::cold));
  const obs::MetricsSnapshot& m = r.metrics;

  const std::uint64_t tx = m.counter_total("nfs.server.bytes_tx");
  const std::uint64_t rx = m.counter_total("nfs.server.bytes_rx");
  EXPECT_EQ(tx + rx, r.storage_payload_bytes);

  const obs::MetricPoint* disk_reads =
      m.find("storage.reads", {{"node", "storage0"}, {"medium", "disk"}});
  ASSERT_NE(disk_reads, nullptr);
  EXPECT_EQ(disk_reads->counter, r.storage_disk_reads);

  const obs::MetricPoint* disk_bytes = m.find(
      "storage.bytes_read", {{"node", "storage0"}, {"medium", "disk"}});
  ASSERT_NE(disk_bytes, nullptr);
  EXPECT_EQ(disk_bytes->counter, r.storage_disk_bytes_read);

  // Per-VM boot times all land in the boot-seconds histogram.
  const obs::MetricPoint* hist = m.find("cluster.boot_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(r.vms.size()));

  // The qcow2 aggregates saw every guest read of the scenario.
  EXPECT_GT(m.counter_total("qcow2.guest_reads"), 0u);
}

TEST(GoldenMetrics, CacheModeExportsCorSeries) {
  const auto r = run_scenario(fig2_params(),
                              fig2_config(CacheMode::compute_disk,
                                          CacheState::cold));
  const obs::MetricsSnapshot& m = r.metrics;
  const obs::MetricPoint* fills =
      m.find("qcow2.cor_fills", {{"image", "cache"}});
  ASSERT_NE(fills, nullptr);
  EXPECT_GT(fills->counter, 0u);
  // CoR stores whole clusters: bytes == clusters * 512 (cache images use
  // the paper's 512-byte clusters by default).
  const obs::MetricPoint* clusters =
      m.find("qcow2.cor_clusters", {{"image", "cache"}});
  const obs::MetricPoint* bytes =
      m.find("qcow2.cor_bytes", {{"image", "cache"}});
  ASSERT_NE(clusters, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->counter, clusters->counter * 512u);
  // Plain overlays never copy-on-read.
  EXPECT_EQ(m.counter_total("qcow2.cor_fills"), fills->counter);
}

// A small fixed cloud scenario pins the cloud.* namespace the same way
// the Fig-2 scenarios pin cluster.*: any drift in workload generation,
// scheduling, placement, or SLO accounting shows up as a changed count.

TEST(GoldenMetrics, CloudSmallScenarioPinnedValues) {
  cloud::CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = 600.0;
  cfg.workload.mean_interarrival_s = 30.0;
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  const cloud::CloudResult r = cloud::run_cloud(cfg);

  EXPECT_EQ(r.arrivals, 20);
  EXPECT_EQ(r.completed, 20);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.warm_hits, 14);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_EQ(r.cache_evictions, 1u);
  EXPECT_EQ(r.storage_payload_bytes, 396598784u);
  EXPECT_NEAR(r.cache_hit_ratio, 0.7, 1e-9);
  EXPECT_NEAR(r.deploy.mean, 7.815850577, 1e-9);
  EXPECT_NEAR(r.deploy.p99, 12.352076311, 1e-9);
  EXPECT_NEAR(r.sim_seconds, 657.417108547, 1e-9);

  // The snapshot mirrors the result struct exactly.
  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counter_total("cloud.arrivals"),
            static_cast<std::uint64_t>(r.arrivals));
  EXPECT_EQ(m.counter_total("cloud.completed"),
            static_cast<std::uint64_t>(r.completed));
  const obs::MetricPoint* hist = m.find("cloud.deploy_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(r.completed));
}

TEST(GoldenMetrics, TracingDoesNotPerturbTiming) {
  obs::Hub hub;
  hub.tracer.set_enabled(true);
  ClusterParams cp = fig2_params();
  cp.hub = &hub;
  const auto traced = run_scenario(cp, fig2_config(CacheMode::compute_disk,
                                                   CacheState::cold));
  const auto plain = run_scenario(fig2_params(),
                                  fig2_config(CacheMode::compute_disk,
                                              CacheState::cold));
  EXPECT_EQ(traced.storage_payload_bytes, plain.storage_payload_bytes);
  EXPECT_DOUBLE_EQ(traced.mean_boot, plain.mean_boot);
  EXPECT_GT(hub.tracer.size(), 0u);
  // Trace export is well-formed enough to start and end as one object.
  const std::string json = hub.tracer.to_chrome_json();
  EXPECT_EQ(json.substr(0, 16), "{\"traceEvents\":[");
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace vmic::cluster
