// Tests for the storage substrates: rotational-disk timing model, page
// cache, cached medium (miss coalescing), simulated directories.
#include <gtest/gtest.h>

#include <vector>

#include "sim/run.hpp"
#include "storage/cached_medium.hpp"
#include "storage/disk.hpp"
#include "storage/page_cache.hpp"
#include "storage/sim_directory.hpp"
#include "util/units.hpp"

namespace vmic::storage {
namespace {

using sim::SimEnv;
using sim::SimTime;
using sim::Task;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;
using vmic::literals::operator""_GiB;

Task<void> do_read(Medium& m, std::uint64_t pos, std::uint64_t len) {
  co_await m.read(pos, len);
}
Task<void> do_write(Medium& m, std::uint64_t pos, std::uint64_t len,
                    bool sync) {
  co_await m.write(pos, len, sync);
}

TEST(RotationalDisk, RandomReadPaysPositioning) {
  SimEnv env;
  RotationalDisk disk{env};
  run_sync(env, do_read(disk, file_pos(1, 0), 64_KiB));
  // ~8.5 ms positioning + 64KiB / 240MB/s ~ 0.27 ms.
  const double secs = sim::to_seconds(env.now());
  EXPECT_NEAR(secs, 8.5e-3 + 65536.0 / 240e6, 1e-4);
  EXPECT_EQ(disk.stats().positioning_ops, 1u);
}

TEST(RotationalDisk, SequentialReadsSkipPositioning) {
  SimEnv env;
  RotationalDisk disk{env};
  run_sync(env, do_read(disk, file_pos(1, 0), 64_KiB));
  const SimTime t1 = env.now();
  run_sync(env, do_read(disk, file_pos(1, 64_KiB), 64_KiB));
  const double secs = sim::to_seconds(env.now() - t1);
  EXPECT_NEAR(secs, 65536.0 / 240e6, 1e-5);
  EXPECT_EQ(disk.stats().positioning_ops, 1u);  // only the first
}

TEST(RotationalDisk, NearSequentialWithinWindow) {
  SimEnv env;
  RotationalDisk disk{env};
  run_sync(env, do_read(disk, file_pos(1, 0), 4_KiB));
  const SimTime t1 = env.now();
  // 100 KiB gap < 256 KiB window: no positioning, gap at transfer speed.
  run_sync(env, do_read(disk, file_pos(1, 4_KiB + 100_KiB), 4_KiB));
  const double secs = sim::to_seconds(env.now() - t1);
  EXPECT_LT(secs, 1e-3);
  EXPECT_EQ(disk.stats().positioning_ops, 1u);
}

TEST(RotationalDisk, DifferentFilesNeverSequential) {
  SimEnv env;
  RotationalDisk disk{env};
  run_sync(env, do_read(disk, file_pos(1, 0), 4_KiB));
  run_sync(env, do_read(disk, file_pos(2, 0), 4_KiB));
  EXPECT_EQ(disk.stats().positioning_ops, 2u);
}

TEST(RotationalDisk, FcfsQueueSerializes) {
  SimEnv env;
  RotationalDisk disk{env};
  // 10 concurrent random readers: service is serialized, so total time is
  // ~10x one access.
  for (int i = 0; i < 10; ++i) {
    env.spawn(do_read(disk, file_pos(100 + i, 0), 64_KiB));
  }
  env.run();
  const double secs = sim::to_seconds(env.now());
  EXPECT_NEAR(secs, 10 * (8.5e-3 + 65536.0 / 240e6), 1e-3);
}

TEST(RotationalDisk, SyncWritesCostMoreThanAsync) {
  SimEnv env;
  RotationalDisk disk{env};
  run_sync(env, do_write(disk, file_pos(1, 0), 512, /*sync=*/true));
  const SimTime t_sync = env.now();
  SimEnv env2;
  RotationalDisk disk2{env2};
  run_sync(env2, do_write(disk2, file_pos(1, 0), 512, /*sync=*/false));
  EXPECT_GT(t_sync, env2.now());
}

TEST(MemMedium, FastAndLinear) {
  SimEnv env;
  MemMedium mem{env};
  run_sync(env, do_read(mem, 0, 1_MiB));
  const double secs = sim::to_seconds(env.now());
  EXPECT_NEAR(secs, 0.5e-6 + 1048576.0 / 6e9, 1e-6);
}

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

TEST(PageCache, HitAfterInsert) {
  PageCache pc{1_MiB};
  EXPECT_FALSE(pc.lookup(0));
  pc.insert(0);
  EXPECT_TRUE(pc.lookup(0));
  EXPECT_TRUE(pc.lookup(100));       // same 64 KiB block
  EXPECT_FALSE(pc.lookup(64_KiB));   // next block
}

TEST(PageCache, LruEviction) {
  PageCache pc{128_KiB};  // room for exactly 2 blocks
  pc.insert(0 * 64_KiB);
  pc.insert(1 * 64_KiB);
  EXPECT_TRUE(pc.lookup(0));  // refresh block 0 => block 1 becomes LRU
  pc.insert(2 * 64_KiB);      // evicts block 1
  EXPECT_TRUE(pc.lookup(0));
  EXPECT_FALSE(pc.lookup(1 * 64_KiB));
  EXPECT_TRUE(pc.lookup(2 * 64_KiB));
  EXPECT_EQ(pc.evictions(), 1u);
}

TEST(PageCache, UsedNeverExceedsCapacity) {
  PageCache pc{512_KiB};
  for (std::uint64_t i = 0; i < 100; ++i) pc.insert(i * 64_KiB);
  EXPECT_LE(pc.used_bytes(), pc.capacity());
}

TEST(PageCache, OversizedBlockNeverInsertsOrEvicts) {
  // Degenerate configuration: a single block is larger than the whole
  // cache. insert() must refuse outright rather than evict the (empty)
  // resident set and then over-commit.
  PageCache pc{32_KiB, 64_KiB};
  pc.insert(0);
  pc.insert(64_KiB);
  EXPECT_EQ(pc.used_bytes(), 0u);
  EXPECT_EQ(pc.evictions(), 0u);
  EXPECT_FALSE(pc.lookup(0));
}

// ---------------------------------------------------------------------------
// CachedMedium
// ---------------------------------------------------------------------------

TEST(CachedMedium, SecondReadHitsMemory) {
  SimEnv env;
  RotationalDisk disk{env};
  CachedMedium cm{env, disk, 1_GiB};
  run_sync(env, do_read(cm, file_pos(1, 0), 64_KiB));
  const SimTime t1 = env.now();
  EXPECT_GT(sim::to_seconds(t1), 8e-3);  // disk miss
  run_sync(env, do_read(cm, file_pos(1, 0), 64_KiB));
  EXPECT_LT(sim::to_seconds(env.now() - t1), 1e-4);  // memory hit
  EXPECT_EQ(disk.stats().reads, 1u);
}

TEST(CachedMedium, ConcurrentMissesCoalesce) {
  SimEnv env;
  RotationalDisk disk{env};
  CachedMedium cm{env, disk, 1_GiB};
  // 64 readers of the same block: one disk access total (this is what
  // keeps Fig 2's InfiniBand curve flat).
  for (int i = 0; i < 64; ++i) env.spawn(do_read(cm, file_pos(1, 0), 64_KiB));
  env.run();
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_LT(sim::to_seconds(env.now()), 10e-3);
}

TEST(CachedMedium, DistinctBlocksEachFault) {
  SimEnv env;
  RotationalDisk disk{env};
  CachedMedium cm{env, disk, 1_GiB};
  for (int i = 0; i < 8; ++i) {
    env.spawn(do_read(cm, file_pos(i + 1, 0), 64_KiB));
  }
  env.run();
  EXPECT_EQ(disk.stats().reads, 8u);
  // Serialized by the disk queue: ~8 positioning ops.
  EXPECT_NEAR(sim::to_seconds(env.now()), 8 * (8.5e-3 + 65536.0 / 240e6),
              2e-3);
}

TEST(CachedMedium, WriteThroughPopulates) {
  SimEnv env;
  RotationalDisk disk{env};
  CachedMedium cm{env, disk, 1_GiB};
  run_sync(env, do_write(cm, file_pos(1, 0), 64_KiB, false));
  EXPECT_EQ(disk.stats().writes, 1u);
  const SimTime t1 = env.now();
  run_sync(env, do_read(cm, file_pos(1, 0), 64_KiB));
  EXPECT_EQ(disk.stats().reads, 0u);  // served from page cache
  EXPECT_LT(sim::to_seconds(env.now() - t1), 1e-4);
}

// ---------------------------------------------------------------------------
// SimDirectory + SimFileBackend
// ---------------------------------------------------------------------------

Task<void> write_then_read(SimDirectory& dir, bool& ok) {
  auto be = dir.create_file("f");
  std::vector<std::uint8_t> data(10000, 0xAB);
  ok = (co_await (*be)->pwrite(0, data)).ok();
  std::vector<std::uint8_t> out(10000);
  ok = ok && (co_await (*be)->pread(0, out)).ok();
  ok = ok && (data == out);
}

TEST(SimDirectory, RoundTripChargesMedium) {
  SimEnv env;
  RotationalDisk disk{env};
  SimDirectory dir{disk};
  bool ok = false;
  run_sync(env, write_then_read(dir, ok));
  EXPECT_TRUE(ok);
  EXPECT_GT(env.now(), 0);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_TRUE(dir.exists("f"));
  EXPECT_EQ(*dir.file_size("f"), 10000u);
}

TEST(SimDirectory, CloneFileCopiesBytes) {
  SimEnv env;
  MemMedium mem{env};
  SimDirectory a{mem}, b{mem};
  {
    auto be = a.create_file("src");
    std::vector<std::uint8_t> data(5000, 7);
    ASSERT_TRUE(sim::run_sync(env, [&]() -> Task<bool> {
      co_return (co_await (*be)->pwrite(0, data)).ok();
    }()));
  }
  ASSERT_TRUE(SimDirectory::clone_file(a, "src", b, "dst").ok());
  EXPECT_EQ(*b.file_size("dst"), 5000u);
  std::vector<std::uint8_t> out(5000);
  (*b.buffer("dst"))->read(0, out);
  EXPECT_EQ(out[4999], 7);
}

TEST(SimDirectory, OpenMissingFails) {
  SimEnv env;
  MemMedium mem{env};
  SimDirectory dir{mem};
  EXPECT_EQ(dir.open_file("nope", true).error(), Errc::not_found);
}

}  // namespace
}  // namespace vmic::storage
