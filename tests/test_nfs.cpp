// Tests for the simulated NFS layer: correctness of remote reads/writes,
// rwsize chunking, fetch-quantum rounding, traffic accounting, and a
// full chain opened over NFS (base on the storage node, CoW local) —
// the paper's Fig 1 configuration.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "io/mount_table.hpp"
#include "nfs/nfs.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "storage/cached_medium.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::nfs {
namespace {

using sim::SimEnv;
using sim::Task;
using storage::MemMedium;
using storage::RotationalDisk;
using storage::SimDirectory;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;
using vmic::literals::operator""_GiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

struct Rig {
  SimEnv env;
  MemMedium mem{env};
  SimDirectory server_dir{mem};
  net::Network net{env, net::gigabit_ethernet()};
  NfsServer server{env, NfsParams{}};
  NfsMount mount{server, net, "base"};

  Rig() { server.add_export("base", &server_dir); }
};

TEST(Nfs, RemoteReadReturnsServerBytes) {
  Rig rig;
  const auto data = pattern_bytes(1, 1_MiB);
  {
    auto be = rig.server_dir.create_file("f.img");
    ASSERT_TRUE(be.ok());
    sim::run_sync(rig.env, [&]() -> Task<void> {
      (void)co_await (*be)->pwrite(0, data);
    }());
  }
  auto client = rig.mount.open_file("f.img", false);
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> out(300000);
  const bool ok = sim::run_sync(rig.env, [&]() -> Task<bool> {
    co_return (co_await (*client)->pread(123456, out)).ok();
  }());
  EXPECT_TRUE(ok);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data() + 123456, out.size()));
}

TEST(Nfs, ReadChunkedAtRwsize) {
  Rig rig;
  {
    auto be = rig.server_dir.create_file("f.img");
    sim::run_sync(rig.env, [&]() -> Task<void> {
      (void)co_await (*be)->truncate(10_MiB);
    }());
  }
  auto client = rig.mount.open_file("f.img", false);
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> out(1_MiB);
  sim::run_sync(rig.env, [&]() -> Task<void> {
    (void)co_await (*client)->pread(0, out);
  }());
  // 1 MiB at 64 KiB rwsize = 16 READ RPCs.
  EXPECT_EQ(rig.server.stats().read_rpcs, 16u);
  EXPECT_EQ(rig.server.stats().tx_payload_bytes, 1_MiB);
}

TEST(Nfs, SmallReadRoundedToFetchQuantum) {
  Rig rig;
  {
    auto be = rig.server_dir.create_file("f.img");
    sim::run_sync(rig.env, [&]() -> Task<void> {
      (void)co_await (*be)->truncate(1_MiB);
    }());
  }
  auto client = rig.mount.open_file("f.img", false);
  std::vector<std::uint8_t> out(512);
  sim::run_sync(rig.env, [&]() -> Task<void> {
    (void)co_await (*client)->pread(10000, out);  // straddles one 4K page
  }());
  EXPECT_EQ(rig.server.stats().read_rpcs, 1u);
  EXPECT_EQ(rig.server.stats().tx_payload_bytes, 4096u);
}

TEST(Nfs, WriteGoesToServer) {
  Rig rig;
  auto client = rig.mount.create_file("new.img");
  ASSERT_TRUE(client.ok());
  const auto data = pattern_bytes(3, 200000);
  sim::run_sync(rig.env, [&]() -> Task<void> {
    (void)co_await (*client)->pwrite(5000, data);
    (void)co_await (*client)->flush();
  }());
  EXPECT_EQ(rig.server.stats().rx_payload_bytes, 200000u);
  std::vector<std::uint8_t> out(200000);
  (*rig.server_dir.buffer("new.img"))->read(5000, out);
  EXPECT_EQ(data, out);
}

TEST(Nfs, ReadOnlyMountRejectsWrites) {
  Rig rig;
  {
    auto be = rig.server_dir.create_file("f.img");
    sim::run_sync(rig.env, [&]() -> Task<void> {
      (void)co_await (*be)->truncate(1_MiB);
    }());
  }
  auto client = rig.mount.open_file("f.img", /*writable=*/false);
  std::vector<std::uint8_t> data(100, 1);
  const auto err = sim::run_sync(rig.env, [&]() -> Task<Errc> {
    co_return (co_await (*client)->pwrite(0, data)).error();
  }());
  EXPECT_EQ(err, Errc::read_only);
}

TEST(Nfs, SequentialThroughputNearWireSpeed) {
  Rig rig;
  {
    auto be = rig.server_dir.create_file("f.img");
    sim::run_sync(rig.env, [&]() -> Task<void> {
      (void)co_await (*be)->truncate(64_MiB);
    }());
  }
  auto client = rig.mount.open_file("f.img", false);
  std::vector<std::uint8_t> buf(16_MiB);
  const sim::SimTime t0 = rig.env.now();
  sim::run_sync(rig.env, [&]() -> Task<void> {
    (void)co_await (*client)->pread(0, buf);
  }());
  const double secs = sim::to_seconds(rig.env.now() - t0);
  const double mbps = 16.0 * 1024 * 1024 / secs / 1e6;
  // One stream of 64 KiB RPCs with per-RPC latency: below wire speed but
  // the right order (>= 80 MB/s on 1 GbE).
  EXPECT_GT(mbps, 80.0);
  EXPECT_LT(mbps, 125.0);
}

// ---------------------------------------------------------------------------
// Full chain over NFS: base exported by the storage node, CoW local —
// the paper's baseline deployment (Fig 1).
// ---------------------------------------------------------------------------

TEST(Nfs, Qcow2ChainOverNfs) {
  SimEnv env;
  // Storage node: disk + page cache holding the base image.
  RotationalDisk disk{env};
  storage::CachedMedium cached{env, disk, 20_GiB};
  SimDirectory storage_dir{cached};
  net::Network net{env, net::gigabit_ethernet()};
  NfsServer server{env, NfsParams{}};
  server.add_export("base", &storage_dir);

  // Compute node: local disk for the CoW image, NFS mount for the base.
  RotationalDisk local_disk{env};
  SimDirectory local_dir{local_disk};
  NfsMount base_mount{server, net, "base"};
  io::MountTable fs;
  fs.mount("local", &local_dir);
  fs.mount("nfs-base", &base_mount);

  // Put a patterned raw base image on the storage node (host-side setup).
  const auto base = pattern_bytes(9, 4_MiB);
  {
    auto be = storage_dir.create_file("centos.img");
    sim::run_sync(env, [&]() -> Task<void> {
      (void)co_await (*be)->pwrite(0, base);
    }());
  }

  const bool ok = sim::run_sync(env, [&]() -> Task<bool> {
    auto r = co_await qcow2::create_cow_image(fs, "local/vm.cow",
                                              "nfs-base/centos.img");
    if (!r.ok()) co_return false;
    auto dev = co_await qcow2::open_image(fs, "local/vm.cow");
    if (!dev.ok()) co_return false;

    // Read through the chain: must match the remote base bytes.
    std::vector<std::uint8_t> out(300000);
    if (!(co_await (*dev)->read(1_MiB, out)).ok()) co_return false;
    if (std::memcmp(out.data(), base.data() + 1_MiB, out.size()) != 0) {
      co_return false;
    }
    // Writes stay local (CoW).
    std::vector<std::uint8_t> data(100000, 0xEE);
    if (!(co_await (*dev)->write(2_MiB, data)).ok()) co_return false;
    if (!(co_await (*dev)->close()).ok()) co_return false;
    co_return true;
  }());
  EXPECT_TRUE(ok);
  EXPECT_GT(server.stats().read_rpcs, 0u);
  EXPECT_EQ(server.stats().rx_payload_bytes, 0u);  // no writes to the base
  EXPECT_GT(env.now(), 0);
  // Base digest unchanged on the server.
  std::vector<std::uint8_t> now(4_MiB);
  (*storage_dir.buffer("centos.img"))->read(0, now);
  EXPECT_EQ(0, std::memcmp(now.data(), base.data(), base.size()));
}

}  // namespace
}  // namespace vmic::nfs
