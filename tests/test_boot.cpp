// Tests for the boot-workload model: trace generation (working-set
// targets per Table 1, determinism, alignment) and trace replay.
#include <gtest/gtest.h>

#include "boot/profile.hpp"
#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "util/interval_set.hpp"
#include "util/units.hpp"

namespace vmic::boot {
namespace {

using vmic::literals::operator""_MiB;

TEST(BootTrace, WorkingSetMatchesTable1Targets) {
  // Table 1: CentOS 85.2 MB, Debian 24.9 MB, Windows 195.8 MB.
  for (const auto& p : {centos63(), debian607(), windows2012()}) {
    const auto t = generate_boot_trace(p);
    const double rel =
        static_cast<double>(t.unique_read_bytes) /
        static_cast<double>(p.unique_read_bytes);
    EXPECT_GT(rel, 0.99) << p.name;
    EXPECT_LT(rel, 1.06) << p.name;  // slight overshoot from run rounding
  }
}

TEST(BootTrace, UniqueBytesMatchIntervalRecount) {
  const auto t = generate_boot_trace(centos63());
  IntervalSet set;
  for (const auto& op : t.ops) {
    if (op.kind == BootOp::Kind::read) {
      set.insert(op.offset, op.offset + op.length);
    }
  }
  EXPECT_EQ(set.total(), t.unique_read_bytes);
}

TEST(BootTrace, DeterministicPerSalt) {
  const auto a = generate_boot_trace(centos63(), 3);
  const auto b = generate_boot_trace(centos63(), 3);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    ASSERT_EQ(a.ops[i].offset, b.ops[i].offset);
    ASSERT_EQ(a.ops[i].length, b.ops[i].length);
    ASSERT_EQ(a.ops[i].cpu_gap, b.ops[i].cpu_gap);
  }
}

TEST(BootTrace, DifferentSaltsDiffer) {
  const auto a = generate_boot_trace(centos63(), 0);
  const auto b = generate_boot_trace(centos63(), 1);
  // Different VMI copies must have different layouts (Fig 3 relies on
  // their disk working sets being distinct).
  bool differs = a.ops.size() != b.ops.size();
  for (std::size_t i = 0; !differs && i < a.ops.size(); ++i) {
    differs = a.ops[i].offset != b.ops[i].offset;
  }
  EXPECT_TRUE(differs);
}

TEST(BootTrace, AllOpsSectorAlignedAndInImage) {
  const auto p = centos63();
  const auto t = generate_boot_trace(p);
  for (const auto& op : t.ops) {
    ASSERT_EQ(op.offset % 512, 0u);
    ASSERT_EQ(op.length % 512, 0u);
    ASSERT_GT(op.length, 0u);
    ASSERT_LE(op.offset + op.length, p.image_size);
  }
}

TEST(BootTrace, CpuGapsSumToProfile) {
  const auto p = centos63();
  const auto t = generate_boot_trace(p);
  sim::SimTime total = 0;
  for (const auto& op : t.ops) total += op.cpu_gap;
  EXPECT_NEAR(sim::to_seconds(total), p.cpu_seconds, 0.01);
}

TEST(BootTrace, HasWritesAndRereads) {
  const auto p = centos63();
  const auto t = generate_boot_trace(p);
  EXPECT_GT(t.total_write_bytes, p.write_bytes / 3);
  EXPECT_LE(t.total_write_bytes, p.write_bytes);
  EXPECT_GT(t.total_read_bytes, t.unique_read_bytes);  // re-reads exist
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TEST(BootVm, ReplayOnLocalChainMeasuresCpuAndIo) {
  // Replay a scaled-down profile against an in-memory chain: boot time
  // must be cpu_seconds plus (tiny) I/O wait.
  OsProfile p = centos63();
  p.unique_read_bytes = 4_MiB;
  p.cpu_seconds = 2.0;
  p.write_bytes = 1_MiB;
  const auto trace = generate_boot_trace(p);

  io::MemImageStore store;
  {
    auto be = store.create_file("base.img");
    ASSERT_TRUE(be.ok());
    ASSERT_TRUE(sim::sync_wait((*be)->truncate(p.image_size)).ok());
  }
  sim::SimEnv env;
  const auto res = sim::run_sync(env, [&]() -> sim::Task<Result<BootResult>> {
    VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
        store, "vm.cow", "base.img",
        {.cluster_bits = 16, .virtual_size = p.image_size}));
    VMIC_CO_TRY(dev, co_await qcow2::open_image(store, "vm.cow"));
    auto r = co_await boot_vm(env, *dev, trace);
    VMIC_CO_TRY_VOID(co_await dev->close());
    co_return r;
  }());
  ASSERT_TRUE(res.ok()) << to_string(res.error());
  EXPECT_NEAR(res->boot_seconds, 2.0, 0.1);  // cpu-bound: no simulated I/O
  EXPECT_GE(res->bytes_read, trace.unique_read_bytes);
  EXPECT_EQ(res->bytes_written, trace.total_write_bytes);
  EXPECT_EQ(res->read_ops,
            static_cast<std::uint64_t>(
                std::count_if(trace.ops.begin(), trace.ops.end(),
                              [](const BootOp& op) {
                                return op.kind == BootOp::Kind::read;
                              })));
}

}  // namespace
}  // namespace vmic::boot
