// Host-side I/O path tests: FileBackend (POSIX) and FsImageDirectory on a
// real temporary directory — the code paths vmi-img and the quickstart
// example run on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/file_backend.hpp"
#include "io/fs_directory.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::io {
namespace {

using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

class FileBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vmic-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  std::string dir_;
};

TEST_F(FileBackendTest, CreateWriteReadRoundTrip) {
  auto be = FileBackend::open(path("f"), FileBackend::Mode::create);
  ASSERT_TRUE(be.ok());
  std::vector<std::uint8_t> data(100000);
  Rng rng{1};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(sync_wait((*be)->pwrite(12345, data)).ok());
  EXPECT_EQ((*be)->size(), 12345 + data.size());
  ASSERT_TRUE(sync_wait((*be)->flush()).ok());

  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait((*be)->pread(12345, out)).ok());
  EXPECT_EQ(data, out);
}

TEST_F(FileBackendTest, ReadPastEofZeroFills) {
  auto be = FileBackend::open(path("f"), FileBackend::Mode::create);
  ASSERT_TRUE(be.ok());
  std::uint8_t one = 1;
  ASSERT_TRUE(sync_wait((*be)->pwrite(0, {&one, 1})).ok());
  std::vector<std::uint8_t> out(100, 0xFF);
  ASSERT_TRUE(sync_wait((*be)->pread(0, out)).ok());
  EXPECT_EQ(out[0], 1);
  for (std::size_t i = 1; i < out.size(); ++i) ASSERT_EQ(out[i], 0);
}

TEST_F(FileBackendTest, ModesEnforced) {
  // create fails if the file exists; open_ro rejects writes.
  ASSERT_TRUE(FileBackend::open(path("f"), FileBackend::Mode::create).ok());
  EXPECT_EQ(FileBackend::open(path("f"), FileBackend::Mode::create).error(),
            Errc::already_exists);
  EXPECT_EQ(FileBackend::open(path("nope"), FileBackend::Mode::open_rw)
                .error(),
            Errc::not_found);
  auto ro = FileBackend::open(path("f"), FileBackend::Mode::open_ro);
  ASSERT_TRUE(ro.ok());
  std::uint8_t b = 0;
  EXPECT_EQ(sync_wait((*ro)->pwrite(0, {&b, 1})).error(), Errc::read_only);
}

TEST_F(FileBackendTest, TruncateGrowsAndShrinks) {
  auto be = FileBackend::open(path("f"), FileBackend::Mode::create);
  ASSERT_TRUE(be.ok());
  ASSERT_TRUE(sync_wait((*be)->truncate(1_MiB)).ok());
  EXPECT_EQ((*be)->size(), 1_MiB);
  ASSERT_TRUE(sync_wait((*be)->truncate(4_KiB)).ok());
  EXPECT_EQ((*be)->size(), 4_KiB);
}

TEST_F(FileBackendTest, FullCacheChainOnRealFiles) {
  // The complete paper workflow against the real filesystem: raw base,
  // 512 B cache, CoW overlay; warm it; verify persistence + check().
  FsImageDirectory dir{dir_};
  {
    auto base = dir.create_file("base.img");
    ASSERT_TRUE(base.ok());
    std::vector<std::uint8_t> data(2_MiB);
    Rng rng{7};
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(sync_wait((*base)->pwrite(0, data)).ok());
    ASSERT_TRUE(sync_wait((*base)->truncate(16_MiB)).ok());
  }
  ASSERT_TRUE(sync_wait(qcow2::create_cache_image(dir, "c.cache", "base.img",
                                                  4_MiB,
                                                  {.cluster_bits = 9,
                                                   .virtual_size = 0}))
                  .ok());
  ASSERT_TRUE(
      sync_wait(qcow2::create_cow_image(dir, "vm.cow", "c.cache")).ok());
  {
    auto dev = sync_wait(qcow2::open_image(dir, "vm.cow"));
    ASSERT_TRUE(dev.ok());
    std::vector<std::uint8_t> buf(1_MiB);
    ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
    Rng rng{7};
    for (std::size_t i = 0; i < 1000; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(rng.next()));
    }
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }
  // Reopen: the cache is warm, base reads stay at zero.
  auto dev = sync_wait(qcow2::open_image(dir, "vm.cow"));
  ASSERT_TRUE(dev.ok());
  auto* cache = dynamic_cast<qcow2::Qcow2Device*>((*dev)->backing());
  ASSERT_NE(cache, nullptr);
  std::vector<std::uint8_t> buf(1_MiB);
  ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
  EXPECT_EQ(cache->stats().backing_reads, 0u);
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean());
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST_F(FileBackendTest, FsDirectoryExistsAndMissing) {
  FsImageDirectory dir{dir_};
  EXPECT_FALSE(dir.exists("x"));
  ASSERT_TRUE(dir.create_file("x").ok());
  EXPECT_TRUE(dir.exists("x"));
  EXPECT_EQ(dir.open_file("y", true).error(), Errc::not_found);
}

TEST_F(FileBackendTest, CommitOnRealFiles) {
  FsImageDirectory dir{dir_};
  {
    auto be = dir.create_file("base.qcow2");
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 8_MiB;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
  }
  ASSERT_TRUE(
      sync_wait(qcow2::create_cow_image(dir, "top.qcow2", "base.qcow2"))
          .ok());
  std::vector<std::uint8_t> data(300000, 0x7E);
  {
    auto top = sync_wait(qcow2::open_image(dir, "top.qcow2"));
    ASSERT_TRUE(top.ok());
    ASSERT_TRUE(sync_wait((*top)->write(1_MiB, data)).ok());
    ASSERT_TRUE(sync_wait((*top)->close()).ok());
  }
  auto committed = sync_wait(qcow2::commit_image(dir, "top.qcow2"));
  ASSERT_TRUE(committed.ok()) << to_string(committed.error());
  auto base = sync_wait(qcow2::open_image(dir, "base.qcow2"));
  ASSERT_TRUE(base.ok());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait((*base)->read(1_MiB, out)).ok());
  EXPECT_EQ(data, out);
}

}  // namespace
}  // namespace vmic::io
